// Package resilience is the fault-isolation layer's shared vocabulary:
// a deterministic fault-injection registry and the FailPolicy option
// that decides what a guarded pass does when a mutation panics or fails
// verification.
//
// Fault points are process-global named sites (e.g. "core/inline",
// "isom/decode") compiled into the production paths. Disarmed, a point
// is two atomic loads — cheap enough to leave in release builds. A
// campaign (hlofuzz -faults) arms exactly one point at a time with a
// seed-derived skip count, so every registered recovery path is
// exercised reproducibly: same seed, same firing site, same remark
// stream.
//
// Naming scheme: "<package>/<site>", lower-case, one site per guarded
// boundary. Rollback-kind points sit inside mutations that a pass
// firewall snapshots and restores; degrade-kind points sit on input
// boundaries (decode, profile read, cache fill, request dispatch) whose
// guards turn the panic into a structured error or a 500 instead.
package resilience

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies what recovery a fault point's guard provides.
type Kind uint8

const (
	// KindRollback points sit inside IR mutations guarded by a pass
	// firewall: an injected panic is recovered, the function snapshots
	// are restored, and compilation continues.
	KindRollback Kind = iota
	// KindDegrade points sit on input/service boundaries: an injected
	// panic is recovered into a structured error (decode failure,
	// HTTP 500, ...) without killing the process.
	KindDegrade
)

func (k Kind) String() string {
	if k == KindDegrade {
		return "degrade"
	}
	return "rollback"
}

// InjectedFault is the panic value raised by an armed Point. Guards can
// treat it like any other panic; campaigns use IsInjected to confirm
// that a recovered panic was the one they planted.
type InjectedFault struct {
	Point string
}

func (f *InjectedFault) Error() string {
	return "resilience: injected fault at " + f.Point
}

// IsInjected reports whether a recovered panic value (or an error
// wrapping one) is an injected fault, and at which point.
func IsInjected(r any) (point string, ok bool) {
	if f, isf := r.(*InjectedFault); isf {
		return f.Point, true
	}
	return "", false
}

// Point is one registered fault-injection site. All methods are safe
// for concurrent use; the armed/skip state is atomic so the disarmed
// fast path costs one load.
type Point struct {
	name  string
	kind  Kind
	armed atomic.Bool
	skip  atomic.Int64 // remaining Inject hits to let pass before firing
	hits  atomic.Int64 // Inject calls since the last ResetStats
	fired atomic.Int64 // faults actually raised since the last ResetStats
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Kind returns the recovery class the point's guard provides.
func (p *Point) Kind() Kind { return p.kind }

// Hits returns how many times execution passed the point since the last
// ResetStats (fired or not).
func (p *Point) Hits() int64 { return p.hits.Load() }

// Fired returns how many faults the point raised since the last
// ResetStats.
func (p *Point) Fired() int64 { return p.fired.Load() }

// Inject raises an InjectedFault panic if the point is armed and its
// skip count is exhausted. Arming is one-shot: the point disarms itself
// as it fires, so one Arm produces exactly one fault.
func (p *Point) Inject() {
	p.hits.Add(1)
	if !p.armed.Load() {
		return
	}
	if p.skip.Add(-1) >= 0 {
		return // still skipping earlier hits
	}
	if p.armed.CompareAndSwap(true, false) {
		p.fired.Add(1)
		panic(&InjectedFault{Point: p.name})
	}
}

// registry holds every registered point. Registration happens in
// package init functions (and tests); lookup is read-mostly.
var registry struct {
	mu     sync.Mutex
	points map[string]*Point
}

// Register creates (or returns the existing) fault point with the given
// name. Registering the same name with a different kind panics — a
// point's recovery class is a property of the guarded site, not of the
// caller.
func Register(name string, kind Kind) *Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.points == nil {
		registry.points = make(map[string]*Point)
	}
	if p, ok := registry.points[name]; ok {
		if p.kind != kind {
			panic(fmt.Sprintf("resilience: point %q re-registered as %s (was %s)", name, kind, p.kind))
		}
		return p
	}
	p := &Point{name: name, kind: kind}
	registry.points[name] = p
	return p
}

// Lookup returns the registered point with the given name, or nil.
func Lookup(name string) *Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.points[name]
}

// Points returns every registered point sorted by name.
func Points() []*Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]*Point, 0, len(registry.points))
	for _, p := range registry.points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// PointNames returns every registered point name, sorted.
func PointNames() []string {
	pts := Points()
	names := make([]string, len(pts))
	for i, p := range pts {
		names[i] = p.name
	}
	return names
}

// Arm arms the named point to fire on the (skip+1)-th Inject hit, once.
// It returns the point, or an error for an unknown name.
func Arm(name string, skip int64) (*Point, error) {
	p := Lookup(name)
	if p == nil {
		return nil, fmt.Errorf("resilience: unknown fault point %q", name)
	}
	if skip < 0 {
		skip = 0
	}
	p.skip.Store(skip)
	p.armed.Store(true)
	return p, nil
}

// Disarm clears the named point's arming (no-op when already disarmed
// or unknown).
func Disarm(name string) {
	if p := Lookup(name); p != nil {
		p.armed.Store(false)
	}
}

// DisarmAll clears every point's arming.
func DisarmAll() {
	for _, p := range Points() {
		p.armed.Store(false)
	}
}

// ResetStats zeroes every point's hit/fired counters (campaign
// bookkeeping between runs).
func ResetStats() {
	for _, p := range Points() {
		p.hits.Store(0)
		p.fired.Store(0)
	}
}

// SkipFor derives a small deterministic skip count from a campaign seed
// and a salt (point name, benchmark name, ...). FNV-1a keeps it stable
// across runs and platforms; the modulus keeps firing likely even on
// sites hit only a few times per compile.
func SkipFor(seed int64, salt string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed>>(8*i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(salt); i++ {
		h ^= uint64(salt[i])
		h *= prime64
	}
	return int64(h % 3)
}
