package resilience

import (
	"sync"
	"testing"
)

func TestRegisterIdempotent(t *testing.T) {
	a := Register("test/idem", KindRollback)
	b := Register("test/idem", KindRollback)
	if a != b {
		t.Fatalf("Register returned distinct points for the same name")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering with a different kind did not panic")
		}
	}()
	Register("test/idem", KindDegrade)
}

func TestInjectOneShotWithSkip(t *testing.T) {
	p := Register("test/oneshot", KindRollback)
	if _, err := Arm("test/oneshot", 2); err != nil {
		t.Fatal(err)
	}
	fired := 0
	hit := func() {
		defer func() {
			if r := recover(); r != nil {
				if pt, ok := IsInjected(r); !ok || pt != "test/oneshot" {
					t.Fatalf("unexpected panic value %v", r)
				}
				fired++
			}
		}()
		p.Inject()
	}
	for i := 0; i < 10; i++ {
		hit()
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1 (one-shot)", fired)
	}
	if p.Fired() < 1 {
		t.Fatalf("Fired() = %d, want >= 1", p.Fired())
	}
	// The skip count means hits 1 and 2 pass, hit 3 fires.
	p2 := Register("test/oneshot2", KindRollback)
	if _, err := Arm("test/oneshot2", 2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		p2.Inject() // must not panic
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("third hit did not fire with skip=2")
			}
		}()
		p2.Inject()
	}()
}

func TestArmUnknown(t *testing.T) {
	if _, err := Arm("test/never-registered", 0); err == nil {
		t.Fatalf("arming an unknown point did not error")
	}
}

func TestDisarm(t *testing.T) {
	p := Register("test/disarm", KindDegrade)
	if _, err := Arm("test/disarm", 0); err != nil {
		t.Fatal(err)
	}
	Disarm("test/disarm")
	p.Inject() // must not panic
	if _, err := Arm("test/disarm", 0); err != nil {
		t.Fatal(err)
	}
	DisarmAll()
	p.Inject() // must not panic
}

func TestConcurrentInjectFiresOnce(t *testing.T) {
	p := Register("test/race", KindRollback)
	if _, err := Arm("test/race", 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}()
			for j := 0; j < 100; j++ {
				p.Inject()
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("concurrent arming fired %d times, want exactly 1", fired)
	}
}

func TestSkipForDeterministic(t *testing.T) {
	a := SkipFor(42, "core/inline")
	b := SkipFor(42, "core/inline")
	if a != b {
		t.Fatalf("SkipFor not deterministic: %d vs %d", a, b)
	}
	if a < 0 || a > 2 {
		t.Fatalf("SkipFor out of range: %d", a)
	}
	// Different salts should be able to produce different skips (not a
	// hard guarantee per pair, but across a set it must not be constant).
	seen := map[int64]bool{}
	for _, salt := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		seen[SkipFor(7, salt)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("SkipFor constant across salts")
	}
}

func TestParseFailPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want FailPolicy
		ok   bool
	}{
		{"", FailAbort, true},
		{"abort", FailAbort, true},
		{"rollback", FailRollback, true},
		{"skip-func", FailSkipFunc, true},
		{"bogus", FailAbort, false},
	}
	for _, c := range cases {
		got, err := ParseFailPolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseFailPolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, p := range []FailPolicy{FailAbort, FailRollback, FailSkipFunc} {
		rt, err := ParseFailPolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round-trip %v failed: %v, %v", p, rt, err)
		}
	}
}

func TestPointsSorted(t *testing.T) {
	Register("test/zz", KindRollback)
	Register("test/aa", KindRollback)
	names := PointNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("PointNames not sorted: %v", names)
		}
	}
	if Lookup("test/aa") == nil {
		t.Fatalf("Lookup failed for registered point")
	}
}
