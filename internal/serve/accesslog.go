package serve

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// accessEntry is one structured access-log record, emitted as a JSON
// line when the request finishes.
type accessEntry struct {
	Time    string  `json:"time"`
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Status  int     `json:"status"`
	DurMS   float64 `json:"dur_ms"`
	Bytes   int     `json:"bytes"`
	Remote  string  `json:"remote,omitempty"`
	Backend string  `json:"backend,omitempty"` // daemon hlogate proxied to
	Dedup   bool    `json:"dedup,omitempty"`   // served from a shared single-flight result
	Cached  bool    `json:"cached,omitempty"`  // replayed from the farm's persistent store
	Err     string  `json:"err,omitempty"`     // terminal error (client gone, queue full, ...)
	Timeout bool    `json:"timeout,omitempty"` // the per-request deadline fired
}

// accessLogger serializes entries onto one writer. A nil logger
// discards everything.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w}
}

func (l *accessLogger) log(e accessEntry) {
	if l == nil {
		return
	}
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	l.logJSON(e)
}

// logJSON writes any record as one JSON line under the logger's lock
// (the shutdown flush shares the stream with access entries).
func (l *accessLogger) logJSON(v any) {
	if l == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	l.w.Write(data)
	l.mu.Unlock()
}

// shutdownEntry is the terminal record of a daemon's access log: the
// server-lifetime counter registry and every span still open at
// shutdown (truncated, including the "server" lifetime span). Before
// this record existed a graceful drain silently discarded the whole
// server-lifetime registry.
type shutdownEntry struct {
	Time      string           `json:"time"`
	Event     string           `json:"event"` // always "shutdown"
	UptimeSec float64          `json:"uptime_s"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	OpenSpans []obs.Span       `json:"open_spans,omitempty"`
}
