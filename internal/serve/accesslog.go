package serve

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// accessEntry is one structured access-log record, emitted as a JSON
// line when the request finishes.
type accessEntry struct {
	Time    string  `json:"time"`
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Status  int     `json:"status"`
	DurMS   float64 `json:"dur_ms"`
	Bytes   int     `json:"bytes"`
	Remote  string  `json:"remote,omitempty"`
	Dedup   bool    `json:"dedup,omitempty"`   // served from a shared single-flight result
	Err     string  `json:"err,omitempty"`     // terminal error (client gone, queue full, ...)
	Timeout bool    `json:"timeout,omitempty"` // the per-request deadline fired
}

// accessLogger serializes entries onto one writer. A nil logger
// discards everything.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w}
}

func (l *accessLogger) log(e accessEntry) {
	if l == nil {
		return
	}
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	l.w.Write(data)
	l.mu.Unlock()
}
