package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/par"
)

// errQueueFull is admit's rejection: the caller should answer 429 with
// the accompanying Retry-After hint.
var errQueueFull = errors.New("serve: admission queue full")

// admission is the server's bounded work queue in front of a
// par-style worker pool: at most workers requests execute at once, at
// most maxQueue more wait for a slot, and everything beyond that is
// rejected immediately with a Retry-After estimate — the server sheds
// load instead of accumulating unbounded goroutines. A waiter whose
// context dies leaves the queue without executing.
type admission struct {
	slots    chan struct{} // buffered; holding a token = holding a worker
	workers  int
	maxQueue int

	mu        sync.Mutex
	queued    int // waiting for a slot
	busy      int // holding a slot
	admitted  int64
	rejected  int64
	completed int64
	// ewmaMS is an exponentially weighted moving average of service
	// time, feeding the Retry-After estimate.
	ewmaMS float64
}

func newAdmission(workers, maxQueue int) *admission {
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, workers),
		workers:  workers,
		maxQueue: maxQueue,
	}
}

// admit blocks until a worker slot is free or ctx dies. When the wait
// queue is already full it returns errQueueFull at once, with a
// Retry-After hint in seconds. On success the returned release func
// must be called exactly once when the work is done (extra calls are
// no-ops).
func (a *admission) admit(ctx context.Context) (release func(), retryAfter int, err error) {
	a.mu.Lock()
	if a.queued >= a.maxQueue {
		a.rejected++
		ra := a.retryAfterLocked()
		a.mu.Unlock()
		return nil, ra, errQueueFull
	}
	a.queued++
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
		start := time.Now()
		a.mu.Lock()
		a.queued--
		a.busy++
		a.admitted++
		a.mu.Unlock()
		var once sync.Once
		return func() {
			once.Do(func() {
				<-a.slots
				ms := float64(time.Since(start)) / float64(time.Millisecond)
				a.mu.Lock()
				a.busy--
				a.completed++
				if a.ewmaMS == 0 {
					a.ewmaMS = ms
				} else {
					a.ewmaMS = 0.8*a.ewmaMS + 0.2*ms
				}
				a.mu.Unlock()
			})
		}, 0, nil
	case <-ctx.Done():
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
		return nil, 0, ctx.Err()
	}
}

// retryAfterLocked estimates how long until a queue slot frees up:
// the backlog ahead of a new arrival divided across the pool, scaled
// by the average service time. Clamped to [1, 60] seconds.
func (a *admission) retryAfterLocked() int {
	ms := a.ewmaMS
	if ms == 0 {
		ms = 1000 // no history yet: assume a second
	}
	backlog := float64(a.queued + a.busy + 1)
	sec := int((ms*backlog/float64(a.workers) + 999) / 1000)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// QueueState is the /queue endpoint's snapshot of admission control.
type QueueState struct {
	Workers        int     `json:"workers"`
	Busy           int     `json:"busy"`
	QueueDepth     int     `json:"queue_depth"`
	Queued         int     `json:"queued"`
	AdmittedTotal  int64   `json:"admitted_total"`
	RejectedTotal  int64   `json:"rejected_total"`
	CompletedTotal int64   `json:"completed_total"`
	AvgServiceMS   float64 `json:"avg_service_ms"`
	RetryAfterS    int     `json:"retry_after_hint_s"`
}

func (a *admission) state() QueueState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return QueueState{
		Workers:        a.workers,
		Busy:           a.busy,
		QueueDepth:     a.maxQueue,
		Queued:         a.queued,
		AdmittedTotal:  a.admitted,
		RejectedTotal:  a.rejected,
		CompletedTotal: a.completed,
		AvgServiceMS:   a.ewmaMS,
		RetryAfterS:    a.retryAfterLocked(),
	}
}
