package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/obs"
	"repro/internal/pa8000"
	"repro/internal/policy"
	"repro/internal/profile"
)

// OptionsJSON is the wire form of a compilation configuration: the
// tunable subset of driver.Options and core.Options, flattened into one
// object. Pointer fields distinguish "absent" from "false"/"zero" so an
// omitted field means the paper's default (core.DefaultOptions), not
// the Go zero value — a client that sends {} compiles exactly like
// `hlocc` with no flags.
type OptionsJSON struct {
	CrossModule      bool      `json:"cross_module,omitempty"`
	Profile          bool      `json:"profile,omitempty"`
	TrainInputs      []int64   `json:"train_inputs,omitempty"`
	ExtraTrainInputs [][]int64 `json:"extra_train_inputs,omitempty"`
	// ProfileText is a stored profile database in the profile.Write text
	// format, attached instead of running a training build (the wire
	// twin of `hlocc -use-profile`).
	ProfileText    string `json:"profile_text,omitempty"`
	AffinityLayout bool   `json:"affinity_layout,omitempty"`

	Budget         *int  `json:"budget,omitempty"`
	Passes         *int  `json:"passes,omitempty"`
	Inline         *bool `json:"inline,omitempty"`
	Clone          *bool `json:"clone,omitempty"`
	Outline        bool  `json:"outline,omitempty"`
	OutlineMinSize int   `json:"outline_min_size,omitempty"`
	ColdPenalty    *bool `json:"cold_penalty,omitempty"`
	LinearCost     bool  `json:"linear_cost,omitempty"`
	DeadCallElim   *bool `json:"dead_call_elim,omitempty"`
	// Policy selects the inline/clone decision policy (the wire twin of
	// `hlocc -policy`): "" or "greedy" for the paper's selection,
	// "bottomup[:bloat=N]", "priority". Unknown specs are a 400.
	Policy string `json:"policy,omitempty"`
}

// driverOptions translates the wire options into a driver configuration
// (observability and cache are attached by the caller).
func (o *OptionsJSON) driverOptions() (driver.Options, error) {
	hlo := core.DefaultOptions()
	if o.Budget != nil {
		if *o.Budget < 0 || *o.Budget > 100_000 {
			return driver.Options{}, fmt.Errorf("budget %d out of range [0, 100000]", *o.Budget)
		}
		hlo.Budget = *o.Budget
	}
	if o.Passes != nil {
		if *o.Passes < 1 || *o.Passes > 64 {
			return driver.Options{}, fmt.Errorf("passes %d out of range [1, 64]", *o.Passes)
		}
		hlo.Passes = *o.Passes
	}
	if o.Inline != nil {
		hlo.Inline = *o.Inline
	}
	if o.Clone != nil {
		hlo.Clone = *o.Clone
	}
	if o.ColdPenalty != nil {
		hlo.ColdPenalty = *o.ColdPenalty
	}
	if o.DeadCallElim != nil {
		hlo.DeadCallElim = *o.DeadCallElim
	}
	hlo.Outline = o.Outline
	hlo.OutlineMinSize = o.OutlineMinSize
	hlo.LinearCost = o.LinearCost
	if _, err := policy.Parse(o.Policy); err != nil {
		return driver.Options{}, err
	}
	hlo.Policy = o.Policy

	opts := driver.Options{
		CrossModule:      o.CrossModule,
		Profile:          o.Profile,
		TrainInputs:      o.TrainInputs,
		ExtraTrainInputs: o.ExtraTrainInputs,
		HLO:              hlo,
	}
	if o.AffinityLayout {
		opts.Layout = backend.LayoutCallAffinity
	}
	if o.ProfileText != "" {
		db, err := profile.Read(strings.NewReader(o.ProfileText))
		if err != nil {
			return driver.Options{}, fmt.Errorf("profile_text: %v", err)
		}
		opts.ProfileData = db
	}
	return opts, nil
}

// policyIdentity extracts the canonical decision-policy identity from a
// work-request body: policy.Parse(options.policy).Key(), the policy
// name plus every parameter at its effective value — "greedy" for an
// absent field, "bottomup:bloat=300" for a bare "bottomup". The
// response cache and the single-flight group key on it so one policy's
// output is never served for another's request, while equivalent
// spellings of the same configuration canonicalize to one identity. A
// malformed spec keys by its raw spelling (it never executes —
// driverOptions rejects it — so only its 400 could ever be shared), and
// a body that is not JSON keys as "" and is rejected downstream.
func policyIdentity(body []byte) string {
	var req struct {
		Options struct {
			Policy string `json:"policy"`
		} `json:"options"`
	}
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	p, err := policy.Parse(req.Options.Policy)
	if err != nil {
		return req.Options.Policy
	}
	return p.Key()
}

// CompileRequest is the body of POST /compile.
type CompileRequest struct {
	Sources []string    `json:"sources"`
	Options OptionsJSON `json:"options"`
	// Remarks asks for the optimization-remark stream in the response.
	Remarks bool `json:"remarks,omitempty"`
	// Spans asks for the aggregated per-phase attribution of this
	// request (wall/self/CPU/alloc per pipeline phase) in the response.
	Spans bool `json:"spans,omitempty"`
	// Tag is a client-chosen workload label (benchmark name, experiment
	// cell). It becomes a runtime/pprof label on the executing
	// goroutines, so daemon CPU profiles can be sliced per workload.
	Tag string `json:"tag,omitempty"`
	// TimeoutMS caps this request's deadline; the server clamps it to
	// its own per-request limit. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r *CompileRequest) validate() error {
	if len(r.Sources) == 0 {
		return fmt.Errorf("sources: at least one module required")
	}
	if len(r.Sources) > 256 {
		return fmt.Errorf("sources: %d modules exceed the limit of 256", len(r.Sources))
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be non-negative")
	}
	return nil
}

// CompileResponse is the body of a successful POST /compile.
type CompileResponse struct {
	Stats       core.Stats   `json:"stats"`
	CompileCost int64        `json:"compile_cost"`
	CodeSize    int          `json:"code_size"`
	Remarks     []obs.Remark `json:"remarks,omitempty"`
	// Phases is the aggregated flight-record attribution of this request
	// (present when the request set "spans": true). Wall-clock fields are
	// this execution's; a single-flight follower sees the leader's.
	Phases []obs.PhaseStat `json:"phases,omitempty"`
}

// RunRequest is the body of POST /run: a compile plus a simulation of
// the result on the PA8000 model.
type RunRequest struct {
	CompileRequest
	Inputs []int64 `json:"inputs,omitempty"`
}

// RunResponse is the body of a successful POST /run.
type RunResponse struct {
	CompileResponse
	Sim *pa8000.Stats `json:"sim"`
	CPI float64       `json:"cpi"`
}

// TrainRequest is the body of POST /train: an instrumented training
// run. The response is the profile database in the profile.Write text
// format (Content-Type: text/plain), ready for OptionsJSON.ProfileText
// or `hlocc -use-profile`.
type TrainRequest struct {
	Sources          []string  `json:"sources"`
	TrainInputs      []int64   `json:"train_inputs,omitempty"`
	ExtraTrainInputs [][]int64 `json:"extra_train_inputs,omitempty"`
	Tag              string    `json:"tag,omitempty"`
	TimeoutMS        int64     `json:"timeout_ms,omitempty"`
}

func (r *TrainRequest) validate() error {
	if len(r.Sources) == 0 {
		return fmt.Errorf("sources: at least one module required")
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be non-negative")
	}
	return nil
}

// buildCompileResponse assembles the response for one completed
// compilation. It is a pure function of the compilation and the
// request's recorder, so a response served over HTTP is byte-identical
// to one assembled directly from driver.Compile with the same inputs
// (the integration tests rely on this).
func buildCompileResponse(c *driver.Compilation, rec *obs.Recorder, wantRemarks, wantSpans bool) CompileResponse {
	resp := CompileResponse{
		Stats:       c.Stats,
		CompileCost: c.CompileCost,
		CodeSize:    c.CodeSize,
	}
	if wantRemarks {
		resp.Remarks = rec.Remarks()
	}
	if wantSpans {
		resp.Phases = obs.Aggregate(rec.Spans()).Phases
	}
	return resp
}

// mustMarshal encodes a locally constructed value — request bodies in
// the load generator and tests, which marshal by construction (plain
// structs of strings and integers). Never used for response bodies;
// those go through jsonResult so an encoding bug degrades to a 500.
func mustMarshal(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal: %v", err))
	}
	return append(data, '\n')
}

// jsonResult is the single JSON encoder for 200 response bodies:
// compact encoding plus a trailing newline. Response types marshal by
// construction, but a shape bug must degrade to a diagnosable 500 with
// an error body — not a panic that kills the worker — so the failure is
// rendered and counted (serve.marshal-errors) instead.
func (s *Server) jsonResult(v any) *flightResult {
	data, err := json.Marshal(v)
	if err != nil {
		s.reg.Count("serve.marshal-errors", 1)
		return jsonError(http.StatusInternalServerError, "marshal response: "+err.Error())
	}
	return &flightResult{
		status:      http.StatusOK,
		contentType: "application/json",
		body:        append(data, '\n'),
	}
}
