package serve

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RetryConfig tunes how load-generator clients react to backpressure
// (429) and server failures (5xx / transport errors). The zero value
// means the historical behavior: retry forever with a flat 50ms pause
// and no circuit breaker.
type RetryConfig struct {
	// Retries is the per-request retry budget: how many consecutive
	// retryable failures a client absorbs for one body before dropping
	// it and moving on. 0 means unlimited.
	Retries int
	// Base is the first backoff delay (default 50ms when Cap is set).
	Base time.Duration
	// Cap bounds the exponential growth (default 2s when Base is set).
	// Base == Cap == 0 disables exponential backoff (flat 50ms).
	Cap time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// failures across all clients; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a
	// half-open probe is allowed (default 1s).
	BreakerCooldown time.Duration
	// Seed makes the jitter deterministic; each client derives its own
	// stream from Seed and its index.
	Seed int64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Base <= 0 && c.Cap > 0 {
		c.Base = 50 * time.Millisecond
	}
	if c.Cap <= 0 && c.Base > 0 {
		c.Cap = 2 * time.Second
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// backoff computes jittered exponential retry delays for one client.
// The jitter stream is a seeded splitmix64, so a load run with a fixed
// RetryConfig.Seed replays the same delay schedule.
type backoff struct {
	cfg RetryConfig
	rng uint64
}

func newBackoff(cfg RetryConfig, client int) *backoff {
	return &backoff{cfg: cfg, rng: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(client) + 1}
}

func (b *backoff) next() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// delay returns the wait before retry number attempt (0-based),
// honoring a server-provided Retry-After floor: the exponential term is
// base·2^attempt capped at Cap, then "equal jitter" keeps at least half
// of it while desynchronizing clients, and the result is never below
// what the server asked for.
func (b *backoff) delay(attempt int, retryAfter time.Duration) time.Duration {
	if b.cfg.Base <= 0 {
		// Historical flat pause, still floored by Retry-After.
		return max(50*time.Millisecond, retryAfter)
	}
	d := b.cfg.Base << min(attempt, 20)
	if d <= 0 || d > b.cfg.Cap {
		d = b.cfg.Cap
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(b.next()%uint64(half))
	}
	return max(d, retryAfter)
}

// retryAfterCap bounds how long a server-provided Retry-After can stall
// a client: a proxy in the chain answering with an absurd delta (or a
// date far in the future) must not park the load generator for hours.
const retryAfterCap = 5 * time.Minute

// parseRetryAfter reads a response's Retry-After header in both RFC
// 9110 forms — delta-seconds ("3") and HTTP-date ("Wed, 21 Oct 2026
// 07:28:00 GMT") — returning 0 when absent, malformed, or in the past,
// and clamping absurd values to retryAfterCap. hlod itself sends
// delta-seconds, but hlogate forwards whatever the backend chain
// produced, so clients must accept the full grammar.
func parseRetryAfter(resp *http.Response) time.Duration {
	return parseRetryAfterAt(resp, time.Now())
}

// parseRetryAfterAt is parseRetryAfter with an injectable clock for the
// HTTP-date form (tests).
func parseRetryAfterAt(resp *http.Response, now time.Time) time.Duration {
	if resp == nil {
		return 0
	}
	s := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if s == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(s); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, terr := http.ParseTime(s); terr == nil {
		d = t.Sub(now)
	} else {
		return 0
	}
	if d < 0 {
		return 0 // negative delta or a date already past: retry now
	}
	return min(d, retryAfterCap)
}

// breaker is a minimal shared circuit breaker: closed while the server
// answers, open for a cooldown after BreakerThreshold consecutive
// failures, then half-open — one probe request is let through and its
// outcome decides between closing and re-opening. It keeps a pounding
// load generator from burying a daemon that is already refusing work.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	fails     int
	openUntil time.Time
	probing   bool
	opens     int64 // times the circuit opened (reported)
}

func newBreaker(cfg RetryConfig) *breaker {
	return &breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown}
}

// allow reports whether a request may be sent now; when the circuit is
// open it returns the remaining cooldown to wait instead. In half-open
// state exactly one caller wins the probe slot.
func (b *breaker) allow(now time.Time) (ok bool, wait time.Duration) {
	if b == nil || b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true, 0
	}
	if now.Before(b.openUntil) {
		return false, b.openUntil.Sub(now)
	}
	if b.probing {
		return false, b.cooldown / 4 // probe in flight; check back shortly
	}
	b.probing = true
	return true, 0
}

// report records a request outcome. Success closes the circuit;
// failure counts toward the threshold and (re)opens it once reached.
func (b *breaker) report(now time.Time, success bool) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if success {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails == b.threshold {
		b.opens++
	}
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}
