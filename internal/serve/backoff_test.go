package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := RetryConfig{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Seed: 42}.withDefaults()
	a := newBackoff(cfg, 0)
	b := newBackoff(cfg, 0)
	for attempt := 0; attempt < 12; attempt++ {
		da := a.delay(attempt, 0)
		db := b.delay(attempt, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		// Equal jitter: at least half the exponential term, never above
		// the cap.
		exp := cfg.Base << min(attempt, 20)
		if exp <= 0 || exp > cfg.Cap {
			exp = cfg.Cap
		}
		if da < exp/2 || da > exp {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, da, exp/2, exp)
		}
	}

	// Different clients (or seeds) get different jitter streams.
	c := newBackoff(cfg, 1)
	same := 0
	for attempt := 4; attempt < 12; attempt++ {
		if a2 := newBackoff(cfg, 0); a2.delay(attempt, 0) == c.delay(attempt, 0) {
			same++
		}
	}
	if same == 8 {
		t.Error("client 0 and client 1 produced identical jitter streams")
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	cfg := RetryConfig{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond}.withDefaults()
	bo := newBackoff(cfg, 0)
	if d := bo.delay(0, 3*time.Second); d < 3*time.Second {
		t.Errorf("delay %v below the server's Retry-After floor of 3s", d)
	}
	// Flat mode (no exponential config) also honors the floor.
	flat := newBackoff(RetryConfig{}, 0)
	if d := flat.delay(0, time.Second); d != time.Second {
		t.Errorf("flat delay = %v, want the 1s Retry-After floor", d)
	}
	if d := flat.delay(0, 0); d != 50*time.Millisecond {
		t.Errorf("flat delay = %v, want the historical 50ms", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if d := parseRetryAfter(mk("2")); d != 2*time.Second {
		t.Errorf("Retry-After 2 = %v", d)
	}
	for _, v := range []string{"", "soon", "-1"} {
		if d := parseRetryAfter(mk(v)); d != 0 {
			t.Errorf("Retry-After %q = %v, want 0", v, d)
		}
	}
	if d := parseRetryAfter(nil); d != 0 {
		t.Errorf("nil response = %v, want 0", d)
	}
}

// TestParseRetryAfterHTTPDate covers the second RFC 9110 form plus the
// clamping rules: dates become a delta against the injected clock,
// values in the past collapse to 0, and absurd waits (either form) are
// capped so a misbehaving proxy cannot park a client for hours.
func TestParseRetryAfterHTTPDate(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		h.Set("Retry-After", v)
		return &http.Response{Header: h}
	}
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	if d := parseRetryAfterAt(mk(now.Add(3*time.Second).Format(http.TimeFormat)), now); d != 3*time.Second {
		t.Errorf("HTTP-date 3s ahead = %v, want 3s", d)
	}
	// RFC 850 and ANSI C asctime are the other two formats http.ParseTime
	// accepts; servers in the wild still emit them.
	if d := parseRetryAfterAt(mk(now.Add(2*time.Second).Format(time.RFC850)), now); d != 2*time.Second {
		t.Errorf("RFC 850 date = %v, want 2s", d)
	}
	if d := parseRetryAfterAt(mk(now.Add(-time.Minute).Format(http.TimeFormat)), now); d != 0 {
		t.Errorf("date in the past = %v, want 0", d)
	}
	if d := parseRetryAfterAt(mk(now.Add(48*time.Hour).Format(http.TimeFormat)), now); d != retryAfterCap {
		t.Errorf("date 48h ahead = %v, want the %v cap", d, retryAfterCap)
	}
	if d := parseRetryAfterAt(mk("99999999"), now); d != retryAfterCap {
		t.Errorf("absurd delta-seconds = %v, want the %v cap", d, retryAfterCap)
	}
	if d := parseRetryAfterAt(mk(" 4 "), now); d != 4*time.Second {
		t.Errorf("padded delta-seconds = %v, want 4s", d)
	}
	if d := parseRetryAfterAt(mk("Wed, 99 Foo 2026 99:99:99 GMT"), now); d != 0 {
		t.Errorf("malformed date = %v, want 0", d)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	cfg := RetryConfig{BreakerThreshold: 3, BreakerCooldown: time.Second}.withDefaults()
	brk := newBreaker(cfg)
	now := time.Unix(1000, 0)

	// Below threshold: closed.
	for i := 0; i < 2; i++ {
		brk.report(now, false)
		if ok, _ := brk.allow(now); !ok {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	// Third failure opens it for the cooldown.
	brk.report(now, false)
	if ok, wait := brk.allow(now); ok || wait != time.Second {
		t.Fatalf("after threshold: allow = %v wait = %v, want open for 1s", ok, wait)
	}
	if brk.opens != 1 {
		t.Errorf("opens = %d, want 1", brk.opens)
	}

	// Cooldown over: exactly one half-open probe goes through.
	later := now.Add(2 * time.Second)
	if ok, _ := brk.allow(later); !ok {
		t.Fatal("half-open probe was not allowed after cooldown")
	}
	if ok, _ := brk.allow(later); ok {
		t.Fatal("second concurrent probe allowed in half-open state")
	}

	// A failed probe re-opens without re-counting an open ...
	brk.report(later, false)
	if ok, _ := brk.allow(later); ok {
		t.Fatal("breaker closed after a failed probe")
	}
	// ... and a successful probe closes the circuit.
	later2 := later.Add(2 * time.Second)
	if ok, _ := brk.allow(later2); !ok {
		t.Fatal("probe not allowed after second cooldown")
	}
	brk.report(later2, true)
	if ok, _ := brk.allow(later2); !ok {
		t.Fatal("breaker still open after a successful probe")
	}

	// Disabled breaker never blocks.
	var off *breaker
	if ok, _ := off.allow(now); !ok {
		t.Error("nil breaker blocked a request")
	}
}

// TestBreakerHalfOpenConcurrent: when the cooldown elapses, exactly one
// of many concurrent callers gets the half-open probe slot; everyone
// else keeps failing fast. A successful probe report closes the breaker
// for all.
func TestBreakerHalfOpenConcurrent(t *testing.T) {
	b := newBreaker(RetryConfig{BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond})
	start := time.Now()
	b.report(start, false) // trips: threshold 1
	if ok, _ := b.allow(start); ok {
		t.Fatal("breaker should be open right after tripping")
	}

	probeAt := start.Add(20 * time.Millisecond)
	const callers = 50
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := b.allow(probeAt); ok {
				granted.Add(1)
			}
		}()
	}
	wg.Wait()
	if granted.Load() != 1 {
		t.Fatalf("%d callers got the half-open probe slot, want exactly 1", granted.Load())
	}

	// While the probe is outstanding, later callers still fail fast.
	if ok, _ := b.allow(probeAt.Add(time.Millisecond)); ok {
		t.Fatal("second probe granted while the first is outstanding")
	}

	// Probe succeeds: closed for everyone, concurrently.
	b.report(probeAt.Add(2*time.Millisecond), true)
	var allowed atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := b.allow(probeAt.Add(3 * time.Millisecond)); ok {
				allowed.Add(1)
			}
		}()
	}
	wg.Wait()
	if allowed.Load() != callers {
		t.Fatalf("only %d/%d callers allowed after the probe closed the breaker", allowed.Load(), callers)
	}

	// And a failed probe re-opens: trip again, reach half-open, fail the
	// probe, confirm the next caller inside the fresh cooldown is denied.
	b.report(probeAt.Add(4*time.Millisecond), false)
	reopenAt := probeAt.Add(40 * time.Millisecond)
	if ok, _ := b.allow(reopenAt); !ok {
		t.Fatal("half-open probe not granted after second cooldown")
	}
	b.report(reopenAt, false)
	if ok, _ := b.allow(reopenAt.Add(time.Millisecond)); ok {
		t.Fatal("breaker closed immediately after a failed half-open probe")
	}
}
