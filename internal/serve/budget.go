package serve

// Retry budgets for the gateway, Finagle-style: every client request
// deposits a fraction of a token, every extra attempt — a failover
// retry or a hedge — withdraws a whole one. The arithmetic is the
// policy: with ratio r, sustained extra-attempt volume is capped at an
// r-fraction of request volume (plus a small burst for transients), so
// a dying backend degrades into its share of the budget instead of
// amplifying every request into a retry storm. The gateway keeps one
// global bucket and one per backend; an extra attempt must afford both,
// and is charged to the backend that *caused* it (the one that failed
// or straggled) — a sick backend spends its own allowance, not the
// farm's.

import "sync"

// tokenBucket is a request-driven token bucket (no wall-clock refill:
// deposits arrive with traffic, so the budget scales with load and is
// exactly reproducible in tests). A nil bucket allows everything —
// that is how RetryBudget < 0 disables budgeting.
type tokenBucket struct {
	mu     sync.Mutex
	ratio  float64 // tokens earned per deposit (per proxied request)
	burst  float64 // cap, and the initial balance
	tokens float64
}

// newTokenBucket builds a bucket, or nil (= unlimited) when ratio < 0.
// ratio 0 means the default 0.1; burst <= 0 means 10.
func newTokenBucket(ratio, burst float64) *tokenBucket {
	if ratio < 0 {
		return nil
	}
	if ratio == 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &tokenBucket{ratio: ratio, burst: burst, tokens: burst}
}

func (b *tokenBucket) deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// withdraw takes one whole token, reporting whether the caller may
// proceed with the extra attempt.
func (b *tokenBucket) withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// balance reads the current token count (metrics).
func (b *tokenBucket) balance() float64 {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
