package serve

import (
	"bytes"
	"context"
	"net/http"

	"repro/internal/cas"
)

// The farm tier: when the server has a cas.Store (hlod -cache-dir),
// fully rendered 200 responses are persisted content-addressed by
// (endpoint, body), and cache fills are coordinated across processes
// with the store's lease protocol. The in-process flightGroup already
// coalesces concurrent identical requests inside one daemon; this layer
// extends the same guarantee to N daemons sharing a cache directory:
//
//   - a response hit is replayed as bytes, before admission — it costs
//     no worker slot and no queue wait, and carries X-Hlod-Cache: hit;
//   - a miss acquires the cross-process fill lease; the winner compiles
//     and Puts, followers poll the entry (or take over if the leader
//     dies — cas.WaitEntry's contract);
//   - every pipeline is deterministic and every request is a pure
//     function of its body, so replaying the leader's bytes (including
//     its recorded phase wall times, exactly as in-process followers
//     already do) is byte-correct.
//
// Store trouble — a full disk, a lease wait that outlives the request
// ceiling — degrades to plain local execution: the farm tier can make
// a daemon faster, never unavailable.

// kindResponse is the cas artifact kind for rendered 200 responses.
const kindResponse = "resp"

// respKey canonicalizes the response cache key: endpoint, the canonical
// decision-policy identity, and the raw body, length-prefixed by
// cas.Key. The body is the canonical form of the request (the JSON
// bytes as sent), matching the flightGroup key. The policy identity —
// policy.Parse(spec).Key(), name plus every parameter — is keyed
// explicitly on top of the body bytes so the separation of one policy's
// rendered output from another's is structural: it cannot silently
// erode if the body form is ever normalized (whitespace, field order,
// defaulted fields) before keying.
func respKey(endpoint, pol string, body []byte) string {
	return cas.Key([]byte(endpoint), []byte(pol), body)
}

// encodeResponse flattens a 200 flightResult: one header line carrying
// the content type, then the raw body.
func encodeResponse(res *flightResult) []byte {
	out := make([]byte, 0, len(res.contentType)+1+len(res.body))
	out = append(out, res.contentType...)
	out = append(out, '\n')
	out = append(out, res.body...)
	return out
}

func decodeResponse(payload []byte) (*flightResult, bool) {
	cut := bytes.IndexByte(payload, '\n')
	if cut < 0 {
		return nil, false
	}
	return &flightResult{
		status:      http.StatusOK,
		contentType: string(payload[:cut]),
		body:        payload[cut+1:],
		cached:      true,
	}, true
}

// executeFarm is execute wrapped in the response tier. Runs inside the
// in-process single-flight, so one daemon enters it at most once
// concurrently per key.
func (s *Server) executeFarm(ctx context.Context, endpoint, pol string, body []byte, build func(ctx context.Context, body []byte) *flightResult) *flightResult {
	if s.store == nil {
		return s.execute(ctx, endpoint, body, build)
	}
	key := respKey(endpoint, pol, body)
	// Bound the cross-process wait by the request ceiling: a follower
	// stuck behind a slow-but-alive leader eventually stops waiting and
	// compiles locally rather than failing the request.
	wctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	payload, lease, err := s.store.WaitEntry(wctx, kindResponse, key)
	if err != nil {
		if ctx.Err() != nil {
			return &flightResult{canceled: true} // our client left while we waited
		}
		s.reg.Count("serve.cas.degraded", 1)
		return s.execute(ctx, endpoint, body, build)
	}
	if payload != nil {
		if res, ok := decodeResponse(payload); ok {
			s.reg.Count("serve.cas.resp.hit", 1)
			return res
		}
		s.reg.Count("serve.cas.degraded", 1)
		return s.execute(ctx, endpoint, body, build)
	}
	// We hold the fill lease: compile, publish, release.
	defer lease.Release()
	s.reg.Count("serve.cas.resp.miss", 1)
	res := s.execute(ctx, endpoint, body, build)
	if res.status == http.StatusOK && !res.canceled {
		// A failed Put (disk full, store wedged, injected cas/write
		// fault) is a counted degradation, not an error: the response
		// was compiled locally and is served regardless; only the farm
		// misses out on the shared fill.
		if s.store.Put(kindResponse, key, encodeResponse(res)) == nil {
			s.reg.Count("serve.cas.resp.fill", 1)
		} else {
			s.reg.Count("serve.cas.resp.fill_fail", 1)
		}
	}
	return res
}

// ResponseCacheKey computes the cas key under which a daemon persists
// the rendered 200 response for (endpoint, body) — exactly the key
// executeFarm uses. Exported for harnesses (the chaos campaign, repair
// tooling) that must target a specific farm-store entry from outside
// the serving process.
func ResponseCacheKey(endpoint string, body []byte) string {
	return respKey(endpoint, policyIdentity(body), body)
}
