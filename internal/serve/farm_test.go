package serve_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/serve"
)

var farmBody = []byte(`{"sources":["module m;\nfunc main() int { return 40 + 2; }"]}`)

func farmServer(t *testing.T, dir, owner string) (*serve.Server, *httptest.Server) {
	t.Helper()
	store, err := cas.Open(dir, cas.Options{Owner: owner, LeaseTTL: 2 * time.Second, PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{Workers: 1, Store: store})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(farmBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	return resp, data
}

func counter(s *serve.Server, name string) int64 {
	for _, c := range s.Registry().Counters() {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestFarmResponseReplay: the second identical request to one daemon is
// served from the persistent store — byte-identical, marked with
// X-Hlod-Cache: hit, and without a second compile.
func TestFarmResponseReplay(t *testing.T) {
	s, ts := farmServer(t, t.TempDir(), "a")
	r1, body1 := postCompile(t, ts.URL)
	if r1.Header.Get("X-Hlod-Cache") == "hit" {
		t.Fatal("first request cannot be a cache hit")
	}
	r2, body2 := postCompile(t, ts.URL)
	if r2.Header.Get("X-Hlod-Cache") != "hit" {
		t.Fatal("second request missing X-Hlod-Cache: hit")
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("replayed response is not byte-identical")
	}
	if got := counter(s, "serve.cas.resp.fill"); got != 1 {
		t.Fatalf("fills = %d, want 1", got)
	}
	if got := counter(s, "serve.cas.resp.hit"); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

// TestFarmPolicyKeysSeparate: the response cache must never replay one
// policy's output for another policy's request — each policy fills its
// own entry — while a repeat under the same policy still hits.
func TestFarmPolicyKeysSeparate(t *testing.T) {
	s, ts := farmServer(t, t.TempDir(), "a")
	body := func(pol string) []byte {
		return []byte(`{"sources":["module m;\nfunc main() int { return 40 + 2; }"],"options":{"policy":"` + pol + `"}}`)
	}
	post := func(b []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if data, _ := io.ReadAll(resp.Body); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		return resp
	}
	if r := post(body("bottomup")); r.Header.Get("X-Hlod-Cache") == "hit" {
		t.Fatal("cold bottomup request cannot be a hit")
	}
	if r := post(body("priority")); r.Header.Get("X-Hlod-Cache") == "hit" {
		t.Fatal("priority request served from the bottomup entry")
	}
	if got := counter(s, "serve.cas.resp.fill"); got != 2 {
		t.Fatalf("fills = %d, want 2 (one per policy)", got)
	}
	if r := post(body("bottomup")); r.Header.Get("X-Hlod-Cache") != "hit" {
		t.Fatal("repeated bottomup request missed its own entry")
	}
}

// TestCompileRejectsBadPolicy: a malformed policy spec is a 400, never
// a silent fallback to the default policy.
func TestCompileRejectsBadPolicy(t *testing.T) {
	_, ts := farmServer(t, t.TempDir(), "a")
	body := []byte(`{"sources":["module m;\nfunc main() int { return 0; }"],"options":{"policy":"nope"}}`)
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestFarmCrossDaemonDedup: daemon B must serve a request daemon A
// already compiled straight from the shared store, byte-identically.
func TestFarmCrossDaemonDedup(t *testing.T) {
	dir := t.TempDir()
	sa, tsa := farmServer(t, dir, "a")
	sb, tsb := farmServer(t, dir, "b")
	_, bodyA := postCompile(t, tsa.URL)
	respB, bodyB := postCompile(t, tsb.URL)
	if respB.Header.Get("X-Hlod-Cache") != "hit" {
		t.Fatal("daemon B recompiled a key daemon A already filled")
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("daemons disagree on the response bytes")
	}
	if fills := counter(sa, "serve.cas.resp.fill") + counter(sb, "serve.cas.resp.fill"); fills != 1 {
		t.Fatalf("total fills = %d, want 1", fills)
	}
}

// TestFarmWarmStartAfterReboot is the acceptance criterion at the serve
// layer: a rebooted daemon (fresh process state, same cache directory)
// serves its first /compile from the store without recompiling,
// verified via the cas hit counters.
func TestFarmWarmStartAfterReboot(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := farmServer(t, dir, "boot1")
	_, body1 := postCompile(t, ts1.URL)
	ts1.Close()

	s2, ts2 := farmServer(t, dir, "boot2") // reboot: everything in-memory is gone
	resp, body2 := postCompile(t, ts2.URL)
	if resp.Header.Get("X-Hlod-Cache") != "hit" {
		t.Fatal("rebooted daemon recompiled its first request")
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("warm-start response differs from the original")
	}
	if hits := s2.Store().Counters()["hits"]; hits == 0 {
		t.Fatal("store hit counter did not move on warm start")
	}
	if fills := counter(s2, "serve.cas.resp.fill"); fills != 0 {
		t.Fatalf("rebooted daemon filled %d entries for a cached key", fills)
	}
}

// TestFarmConcurrentDaemonsSingleFill: many clients race the same cold
// key against two daemons; the lease protocol must allow exactly one
// compile across both processes, and every client gets the same bytes.
func TestFarmConcurrentDaemonsSingleFill(t *testing.T) {
	dir := t.TempDir()
	sa, tsa := farmServer(t, dir, "a")
	sb, tsb := farmServer(t, dir, "b")
	urls := []string{tsa.URL, tsb.URL}

	var wg sync.WaitGroup
	bodies := make([][]byte, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(urls[i%2]+"/compile", "application/json", bytes.NewReader(farmBody))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				bodies[i], _ = io.ReadAll(resp.Body)
			}
		}(i)
	}
	wg.Wait()

	if fills := counter(sa, "serve.cas.resp.fill") + counter(sb, "serve.cas.resp.fill"); fills != 1 {
		t.Fatalf("total fills across the farm = %d, want 1", fills)
	}
	var want []byte
	for _, b := range bodies {
		if b != nil {
			want = b
			break
		}
	}
	if want == nil {
		t.Fatal("no request succeeded")
	}
	for i, b := range bodies {
		if b != nil && !bytes.Equal(b, want) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
}
