package serve

// The compile farm's front door: cmd/hlogate terminates client HTTP,
// picks a backend daemon by rendezvous-hashing the request's cache key
// (endpoint + body), and proxies the exchange verbatim. Keying the
// route on the same bytes hlod keys its caches on means a given compile
// always lands on the daemon whose in-memory tier already holds it —
// the shared cas.Store makes any routing correct, affinity just makes
// it fast. Each backend gets its own circuit breaker (the PR 5
// breaker): transport errors and 5xx responses count as failures, and
// an ejected backend's traffic fails over to the next daemon in that
// key's rendezvous order until a half-open probe revives it. 429s are
// NOT failures and are never rerouted — queue-full is healthy
// backpressure, and hiding it behind a retry on another saturated
// daemon would destroy the Retry-After signal clients pace on.

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RendezvousOrder ranks backends for key by rendezvous (highest-random-
// weight) hashing: every client that knows the backend set computes the
// same preference order for a key with no coordination, and removing a
// backend only remaps the keys that were on it. Used by hlogate for
// routing and by hloload's -backends client mode, so both sides of the
// farm agree on placement.
func RendezvousOrder(key string, backends []string) []string {
	type ranked struct {
		url    string
		weight uint64
	}
	rs := make([]ranked, len(backends))
	for i, b := range backends {
		h := fnv.New64a()
		io.WriteString(h, key)
		h.Write([]byte{0})
		io.WriteString(h, b)
		rs[i] = ranked{url: b, weight: h.Sum64()}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].weight != rs[j].weight {
			return rs[i].weight > rs[j].weight
		}
		return rs[i].url < rs[j].url // deterministic on (absurdly unlikely) ties
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.url
	}
	return out
}

// GatewayConfig tunes the front proxy. Backends is required; everything
// else has serviceable defaults.
type GatewayConfig struct {
	// Backends are the hlod base URLs (e.g. http://127.0.0.1:8081).
	Backends []string
	// BreakerThreshold ejects a backend after this many consecutive
	// transport/5xx failures; <= 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an ejected backend sits out before a
	// half-open probe; <= 0 means 1s.
	BreakerCooldown time.Duration
	// MaxBodyBytes bounds request bodies (read fully so a failover can
	// replay them); <= 0 means 8 MiB, matching hlod.
	MaxBodyBytes int64
	// Client issues the proxied requests; nil means a client with a
	// 5-minute timeout (compiles are slow; hlod's own RequestTimeout is
	// the real ceiling).
	Client *http.Client
	// AccessLog, when non-nil, receives one JSON line per proxied
	// request.
	AccessLog io.Writer
}

// gwBackend is one daemon as the gateway sees it: its URL and the
// breaker guarding it.
type gwBackend struct {
	url string
	brk *breaker
}

// Gateway is the proxy handler. Create with NewGateway.
type Gateway struct {
	cfg      GatewayConfig
	backends []*gwBackend
	client   *http.Client
	reg      *obs.Recorder
	log      *accessLogger
	mux      *http.ServeMux
	start    time.Time
	draining atomic.Bool
}

// NewGateway builds a Gateway; it panics if cfg.Backends is empty
// (cmd/hlogate validates the flag first).
func NewGateway(cfg GatewayConfig) *Gateway {
	if len(cfg.Backends) == 0 {
		panic("serve.NewGateway: no backends")
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	g := &Gateway{
		cfg:    cfg,
		client: cfg.Client,
		reg:    obs.New(),
		log:    newAccessLogger(cfg.AccessLog),
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	rc := RetryConfig{BreakerThreshold: cfg.BreakerThreshold, BreakerCooldown: cfg.BreakerCooldown}
	for _, b := range cfg.Backends {
		g.backends = append(g.backends, &gwBackend{url: b, brk: newBreaker(rc)})
	}
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/compile", g.proxyHandler("compile"))
	g.mux.HandleFunc("/run", g.proxyHandler("run"))
	g.mux.HandleFunc("/train", g.proxyHandler("train"))
	return g
}

// StartDrain fails /healthz and refuses new work; in-flight proxied
// requests finish. cmd/hlogate's SIGTERM handler calls this before
// http.Server.Shutdown, mirroring hlod.
func (g *Gateway) StartDrain() { g.draining.Store(true) }

// Registry exposes the gateway-lifetime counters (tests).
func (g *Gateway) Registry() *obs.Recorder { return g.reg }

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	g.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		status = 499
	}
	g.reg.Count("gw.req|"+endpointLabel(r.URL.Path)+"|"+strconv.Itoa(status), 1)
	g.log.log(accessEntry{
		Method: r.Method,
		Path:   r.URL.Path,
		Status: status,
		DurMS:  float64(time.Since(start)) / float64(time.Millisecond),
		Bytes:  sw.bytes,
		Remote: r.RemoteAddr,
		// relay stamped the serving daemon on the response headers.
		Backend: sw.Header().Get("X-Hlogate-Backend"),
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	now := time.Now()
	live := 0
	var buf bytes.Buffer
	for _, b := range g.backends {
		open, _ := b.brk.stats(now)
		state := "up"
		if open {
			state = "ejected"
		} else {
			live++
		}
		fmt.Fprintf(&buf, "%s %s\n", b.url, state)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if live == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "ok %d/%d backends\n", live, len(g.backends))
	w.Write(buf.Bytes())
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	now := time.Now()
	fmt.Fprintf(w, "# HELP hlogate_up Whether the gateway is routing (0 while draining).\n")
	fmt.Fprintf(w, "# TYPE hlogate_up gauge\n")
	up := 1
	if g.draining.Load() {
		up = 0
	}
	fmt.Fprintf(w, "hlogate_up %d\n", up)
	fmt.Fprintf(w, "# TYPE hlogate_uptime_seconds gauge\n")
	fmt.Fprintf(w, "hlogate_uptime_seconds %.3f\n", time.Since(g.start).Seconds())
	fmt.Fprintf(w, "# HELP hlogate_backend_up Backend liveness as the breaker sees it.\n")
	fmt.Fprintf(w, "# TYPE hlogate_backend_up gauge\n")
	for _, b := range g.backends {
		open, _ := b.brk.stats(now)
		v := 1
		if open {
			v = 0
		}
		fmt.Fprintf(w, "hlogate_backend_up{backend=%q} %d\n", b.url, v)
	}
	fmt.Fprintf(w, "# TYPE hlogate_backend_ejections_total counter\n")
	for _, b := range g.backends {
		_, opens := b.brk.stats(now)
		fmt.Fprintf(w, "hlogate_backend_ejections_total{backend=%q} %d\n", b.url, opens)
	}
	// Counter registry: gw.req|endpoint|code and gw.fwd|backend|outcome.
	var reqLines, fwdLines, rest []string
	for _, c := range g.reg.Counters() {
		if suffix, ok := cutCounter(c.Name, "gw.req|"); ok {
			reqLines = append(reqLines, fmt.Sprintf("hlogate_requests_total{endpoint=%q,code=%q} %d", suffix[0], suffix[1], c.Value))
			continue
		}
		if suffix, ok := cutCounter(c.Name, "gw.fwd|"); ok {
			fwdLines = append(fwdLines, fmt.Sprintf("hlogate_forwards_total{backend=%q,outcome=%q} %d", suffix[0], suffix[1], c.Value))
			continue
		}
		rest = append(rest, fmt.Sprintf("hlogate_counter{name=%q} %d", c.Name, c.Value))
	}
	writeCounterBlock(w, "hlogate_requests_total", "Client requests by endpoint and final status.", reqLines)
	writeCounterBlock(w, "hlogate_forwards_total", "Proxied attempts by backend and outcome (ok, error, http_5xx).", fwdLines)
	writeCounterBlock(w, "hlogate_counter", "Other gateway counters.", rest)
}

// cutCounter splits "prefix|a|b" counter names into their two label
// parts.
func cutCounter(name, prefix string) ([2]string, bool) {
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return [2]string{}, false
	}
	restStr := name[len(prefix):]
	for i := 0; i < len(restStr); i++ {
		if restStr[i] == '|' {
			return [2]string{restStr[:i], restStr[i+1:]}, true
		}
	}
	return [2]string{}, false
}

func writeCounterBlock(w io.Writer, name, help string, lines []string) {
	if len(lines) == 0 {
		return
	}
	sort.Strings(lines)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// stats reports whether the breaker currently holds the backend ejected
// and how many times it has opened. Half-open (probing) counts as up —
// the next request is the probe.
func (b *breaker) stats(now time.Time) (open bool, opens int64) {
	if b == nil || b.threshold <= 0 {
		return false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && now.Before(b.openUntil), b.opens
}

// proxyHandler forwards one work endpoint. The body is read fully up
// front so a failover can replay it against the next backend in the
// key's rendezvous order.
func (g *Gateway) proxyHandler(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeResult(w, jsonError(http.StatusMethodNotAllowed, "POST required"))
			return
		}
		if g.draining.Load() {
			writeResult(w, jsonError(http.StatusServiceUnavailable, "draining"))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeResult(w, jsonError(http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)))
				return
			}
			return // client gone mid-upload
		}
		g.forward(w, r, endpoint, body)
	}
}

// forward tries the key's rendezvous order, skipping ejected backends,
// failing over past transport errors and 5xx responses, and relaying
// the first healthy answer verbatim (all headers — Retry-After and the
// X-Hlod-* queue/cache set included — plus X-Hlogate-Backend naming the
// daemon that served it). When every backend is down it answers 503
// with a Retry-After derived from the soonest breaker reopen.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, endpoint string, body []byte) {
	order := RendezvousOrder(endpoint+"\x00"+string(body), g.cfg.Backends)
	byURL := make(map[string]*gwBackend, len(g.backends))
	for _, b := range g.backends {
		byURL[b.url] = b
	}

	var lastStatus int
	var lastBody []byte
	var lastHeader http.Header
	var lastBackend string
	minWait := time.Duration(-1)
	for _, url := range order {
		b := byURL[url]
		now := time.Now()
		if ok, wait := b.brk.allow(now); !ok {
			if minWait < 0 || wait < minWait {
				minWait = wait
			}
			g.reg.Count("gw.fwd|"+url+"|skipped", 1)
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url+"/"+endpoint, bytes.NewReader(body))
		if err != nil {
			b.brk.report(time.Now(), false)
			continue
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := g.client.Do(req)
		if err != nil {
			// Transport failure: the daemon is gone or unreachable. Eject
			// progress and fail over — unless our own client bailed.
			if r.Context().Err() != nil {
				return
			}
			b.brk.report(time.Now(), false)
			g.reg.Count("gw.fwd|"+url+"|error", 1)
			continue
		}
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes+1))
		resp.Body.Close()
		if rerr != nil {
			b.brk.report(time.Now(), false)
			g.reg.Count("gw.fwd|"+url+"|error", 1)
			continue
		}
		if resp.StatusCode >= 500 {
			// Daemon-side failure: count it, remember it (if no backend
			// does better the client still deserves the real error), and
			// try the next candidate.
			b.brk.report(time.Now(), false)
			g.reg.Count("gw.fwd|"+url+"|http_5xx", 1)
			lastStatus, lastBody, lastHeader, lastBackend = resp.StatusCode, respBody, resp.Header, url
			continue
		}
		// Anything below 500 — success, client error, or 429 backpressure
		// — is a healthy daemon answering. Relay verbatim.
		b.brk.report(time.Now(), true)
		g.reg.Count("gw.fwd|"+url+"|ok", 1)
		relay(w, resp.StatusCode, resp.Header, respBody, url)
		return
	}

	if lastStatus != 0 {
		relay(w, lastStatus, lastHeader, lastBody, lastBackend)
		return
	}
	// Every backend skipped or unreachable with nothing to relay.
	g.reg.Count("gw.unavailable", 1)
	if minWait > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(max(minWait/time.Second, 1))))
	}
	writeResult(w, jsonError(http.StatusServiceUnavailable, "no backend available"))
}

// relay copies a backend response onto the client connection, headers
// first (verbatim), stamped with the serving backend.
func relay(w http.ResponseWriter, status int, header http.Header, body []byte, backend string) {
	for k, vs := range header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Hlogate-Backend", backend)
	w.WriteHeader(status)
	w.Write(body)
}
