package serve

// The compile farm's front door: cmd/hlogate terminates client HTTP,
// picks a backend daemon by rendezvous-hashing the request's cache key
// (endpoint + body), and proxies the exchange verbatim. Keying the
// route on the same bytes hlod keys its caches on means a given compile
// always lands on the daemon whose in-memory tier already holds it —
// the shared cas.Store makes any routing correct, affinity just makes
// it fast. Each backend gets its own circuit breaker (the PR 5
// breaker): transport errors and 5xx responses count as failures, and
// an ejected backend's traffic fails over to the next daemon in that
// key's rendezvous order until a half-open probe revives it. 429s are
// NOT failures and are never rerouted — queue-full is healthy
// backpressure, and hiding it behind a retry on another saturated
// daemon would destroy the Retry-After signal clients pace on.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RendezvousOrder ranks backends for key by rendezvous (highest-random-
// weight) hashing: every client that knows the backend set computes the
// same preference order for a key with no coordination, and removing a
// backend only remaps the keys that were on it. Used by hlogate for
// routing and by hloload's -backends client mode, so both sides of the
// farm agree on placement.
func RendezvousOrder(key string, backends []string) []string {
	type ranked struct {
		url    string
		weight uint64
	}
	rs := make([]ranked, len(backends))
	for i, b := range backends {
		h := fnv.New64a()
		io.WriteString(h, key)
		h.Write([]byte{0})
		io.WriteString(h, b)
		rs[i] = ranked{url: b, weight: h.Sum64()}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].weight != rs[j].weight {
			return rs[i].weight > rs[j].weight
		}
		return rs[i].url < rs[j].url // deterministic on (absurdly unlikely) ties
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.url
	}
	return out
}

// GatewayConfig tunes the front proxy. Backends is required; everything
// else has serviceable defaults.
type GatewayConfig struct {
	// Backends are the hlod base URLs (e.g. http://127.0.0.1:8081).
	Backends []string
	// BreakerThreshold ejects a backend after this many consecutive
	// transport/5xx failures; <= 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an ejected backend sits out before a
	// half-open probe; <= 0 means 1s.
	BreakerCooldown time.Duration
	// MaxBodyBytes bounds request bodies (read fully so a failover can
	// replay them); <= 0 means 8 MiB, matching hlod.
	MaxBodyBytes int64
	// Client issues the proxied requests; nil means a client with a
	// 5-minute timeout (compiles are slow; hlod's own RequestTimeout is
	// the real ceiling).
	Client *http.Client
	// AccessLog, when non-nil, receives one JSON line per proxied
	// request.
	AccessLog io.Writer
	// RetryBudget is the token-bucket deposit ratio: every client
	// request earns this fraction of a token (globally and on the
	// backend it lands on), and every failover retry or hedge spends a
	// whole token from both the global bucket and the causing backend's.
	// Sustained extra attempts are thereby capped at RetryBudget x
	// request volume. 0 means 0.1; negative disables budgeting.
	RetryBudget float64
	// RetryBurst is each bucket's cap and starting balance, the
	// allowance for transient bursts before the ratio kicks in.
	// <= 0 means 10.
	RetryBurst float64
	// HedgeAfter, when > 0, launches a duplicate of a work request
	// against the next backend in rendezvous order if the primary has
	// not answered within this delay. Sound because every farm response
	// is a pure function of the request body: whichever copy answers
	// first is relayed, and when both return 200 their bodies are
	// asserted byte-identical (gw.hedge.mismatch counts violations).
	// Hedges spend retry-budget tokens like failovers do. 0 disables.
	HedgeAfter time.Duration
	// ProbeInterval, when > 0, actively probes each backend's /healthz
	// on this period and feeds the outcome to its breaker, so an
	// ejected backend is revived (and a dying one ejected) without
	// waiting for user traffic to find out. 0 disables.
	ProbeInterval time.Duration
}

// gwBackend is one daemon as the gateway sees it: its URL, the breaker
// guarding it, and its retry-budget bucket.
type gwBackend struct {
	url    string
	brk    *breaker
	budget *tokenBucket
}

// Gateway is the proxy handler. Create with NewGateway; call Close to
// stop the probe loop (if ProbeInterval enabled it) and release idle
// connections.
type Gateway struct {
	cfg      GatewayConfig
	backends []*gwBackend
	client   *http.Client
	budget   *tokenBucket // global retry/hedge budget
	reg      *obs.Recorder
	log      *accessLogger
	mux      *http.ServeMux
	start    time.Time
	draining atomic.Bool

	probeClient *http.Client
	probeStop   chan struct{}
	probeDone   chan struct{}
}

// NewGateway builds a Gateway; it panics if cfg.Backends is empty
// (cmd/hlogate validates the flag first).
func NewGateway(cfg GatewayConfig) *Gateway {
	if len(cfg.Backends) == 0 {
		panic("serve.NewGateway: no backends")
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	g := &Gateway{
		cfg:    cfg,
		client: cfg.Client,
		reg:    obs.New(),
		log:    newAccessLogger(cfg.AccessLog),
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	g.budget = newTokenBucket(cfg.RetryBudget, cfg.RetryBurst)
	rc := RetryConfig{BreakerThreshold: cfg.BreakerThreshold, BreakerCooldown: cfg.BreakerCooldown}
	for _, b := range cfg.Backends {
		g.backends = append(g.backends, &gwBackend{
			url:    b,
			brk:    newBreaker(rc),
			budget: newTokenBucket(cfg.RetryBudget, cfg.RetryBurst),
		})
	}
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/compile", g.proxyHandler("compile"))
	g.mux.HandleFunc("/run", g.proxyHandler("run"))
	g.mux.HandleFunc("/train", g.proxyHandler("train"))
	if cfg.ProbeInterval > 0 {
		g.startProbes()
	}
	return g
}

// Close stops the active-probe loop and releases idle connections. It
// does not drain in-flight proxied requests; StartDrain plus
// http.Server.Shutdown own that.
func (g *Gateway) Close() {
	if g.probeStop != nil {
		close(g.probeStop)
		<-g.probeDone
		g.probeStop = nil
	}
	g.client.CloseIdleConnections()
	if g.probeClient != nil {
		g.probeClient.CloseIdleConnections()
	}
}

// StartDrain fails /healthz and refuses new work; in-flight proxied
// requests finish. cmd/hlogate's SIGTERM handler calls this before
// http.Server.Shutdown, mirroring hlod.
func (g *Gateway) StartDrain() { g.draining.Store(true) }

// Registry exposes the gateway-lifetime counters (tests).
func (g *Gateway) Registry() *obs.Recorder { return g.reg }

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	g.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		status = 499
	}
	g.reg.Count("gw.req|"+endpointLabel(r.URL.Path)+"|"+strconv.Itoa(status), 1)
	g.log.log(accessEntry{
		Method: r.Method,
		Path:   r.URL.Path,
		Status: status,
		DurMS:  float64(time.Since(start)) / float64(time.Millisecond),
		Bytes:  sw.bytes,
		Remote: r.RemoteAddr,
		// relay stamped the serving daemon on the response headers.
		Backend: sw.Header().Get("X-Hlogate-Backend"),
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	now := time.Now()
	live := 0
	var buf bytes.Buffer
	for _, b := range g.backends {
		open, _ := b.brk.stats(now)
		state := "up"
		if open {
			state = "ejected"
		} else {
			live++
		}
		fmt.Fprintf(&buf, "%s %s\n", b.url, state)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if live == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "ok %d/%d backends\n", live, len(g.backends))
	w.Write(buf.Bytes())
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	now := time.Now()
	fmt.Fprintf(w, "# HELP hlogate_up Whether the gateway is routing (0 while draining).\n")
	fmt.Fprintf(w, "# TYPE hlogate_up gauge\n")
	up := 1
	if g.draining.Load() {
		up = 0
	}
	fmt.Fprintf(w, "hlogate_up %d\n", up)
	fmt.Fprintf(w, "# TYPE hlogate_uptime_seconds gauge\n")
	fmt.Fprintf(w, "hlogate_uptime_seconds %.3f\n", time.Since(g.start).Seconds())
	fmt.Fprintf(w, "# HELP hlogate_backend_up Backend liveness as the breaker sees it.\n")
	fmt.Fprintf(w, "# TYPE hlogate_backend_up gauge\n")
	for _, b := range g.backends {
		open, _ := b.brk.stats(now)
		v := 1
		if open {
			v = 0
		}
		fmt.Fprintf(w, "hlogate_backend_up{backend=%q} %d\n", b.url, v)
	}
	fmt.Fprintf(w, "# TYPE hlogate_backend_ejections_total counter\n")
	for _, b := range g.backends {
		_, opens := b.brk.stats(now)
		fmt.Fprintf(w, "hlogate_backend_ejections_total{backend=%q} %d\n", b.url, opens)
	}
	if g.budget != nil {
		fmt.Fprintf(w, "# HELP hlogate_retry_budget Remaining retry/hedge tokens per bucket.\n")
		fmt.Fprintf(w, "# TYPE hlogate_retry_budget gauge\n")
		fmt.Fprintf(w, "hlogate_retry_budget{scope=\"global\"} %.2f\n", g.budget.balance())
		for _, b := range g.backends {
			fmt.Fprintf(w, "hlogate_retry_budget{backend=%q} %.2f\n", b.url, b.budget.balance())
		}
	}
	// Counter registry: gw.req|endpoint|code, gw.fwd|backend|outcome,
	// gw.probe|backend|outcome.
	var reqLines, fwdLines, probeLines, rest []string
	for _, c := range g.reg.Counters() {
		if suffix, ok := cutCounter(c.Name, "gw.req|"); ok {
			reqLines = append(reqLines, fmt.Sprintf("hlogate_requests_total{endpoint=%q,code=%q} %d", suffix[0], suffix[1], c.Value))
			continue
		}
		if suffix, ok := cutCounter(c.Name, "gw.fwd|"); ok {
			fwdLines = append(fwdLines, fmt.Sprintf("hlogate_forwards_total{backend=%q,outcome=%q} %d", suffix[0], suffix[1], c.Value))
			continue
		}
		if suffix, ok := cutCounter(c.Name, "gw.probe|"); ok {
			probeLines = append(probeLines, fmt.Sprintf("hlogate_probes_total{backend=%q,outcome=%q} %d", suffix[0], suffix[1], c.Value))
			continue
		}
		rest = append(rest, fmt.Sprintf("hlogate_counter{name=%q} %d", c.Name, c.Value))
	}
	writeCounterBlock(w, "hlogate_requests_total", "Client requests by endpoint and final status.", reqLines)
	writeCounterBlock(w, "hlogate_forwards_total", "Proxied attempts by backend and outcome (ok, error, http_5xx).", fwdLines)
	writeCounterBlock(w, "hlogate_probes_total", "Active health probes by backend and outcome.", probeLines)
	writeCounterBlock(w, "hlogate_counter", "Other gateway counters.", rest)
}

// cutCounter splits "prefix|a|b" counter names into their two label
// parts.
func cutCounter(name, prefix string) ([2]string, bool) {
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return [2]string{}, false
	}
	restStr := name[len(prefix):]
	for i := 0; i < len(restStr); i++ {
		if restStr[i] == '|' {
			return [2]string{restStr[:i], restStr[i+1:]}, true
		}
	}
	return [2]string{}, false
}

func writeCounterBlock(w io.Writer, name, help string, lines []string) {
	if len(lines) == 0 {
		return
	}
	sort.Strings(lines)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// stats reports whether the breaker currently holds the backend ejected
// and how many times it has opened. Half-open (probing) counts as up —
// the next request is the probe.
func (b *breaker) stats(now time.Time) (open bool, opens int64) {
	if b == nil || b.threshold <= 0 {
		return false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && now.Before(b.openUntil), b.opens
}

// proxyHandler forwards one work endpoint. The body is read fully up
// front so a failover can replay it against the next backend in the
// key's rendezvous order.
func (g *Gateway) proxyHandler(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeResult(w, jsonError(http.StatusMethodNotAllowed, "POST required"))
			return
		}
		if g.draining.Load() {
			writeResult(w, jsonError(http.StatusServiceUnavailable, "draining"))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeResult(w, jsonError(http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)))
				return
			}
			return // client gone mid-upload
		}
		g.forward(w, r, endpoint, body)
	}
}

// attemptResult is one proxied attempt's outcome as seen by forward.
type attemptResult struct {
	url    string
	status int
	header http.Header
	body   []byte
	err    error // transport-level failure
	hedged bool
}

// forward tries the key's rendezvous order, skipping ejected backends,
// failing over past transport errors and 5xx responses (when the retry
// budget affords it), hedging a straggling primary (when configured),
// and relaying the first healthy answer verbatim (all headers —
// Retry-After and the X-Hlod-* queue/cache set included — plus
// X-Hlogate-Backend naming the daemon that served it). When every
// backend is down it answers 503 with a Retry-After derived from the
// soonest breaker reopen.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, endpoint string, body []byte) {
	order := RendezvousOrder(endpoint+"\x00"+string(body), g.cfg.Backends)
	byURL := make(map[string]*gwBackend, len(g.backends))
	for _, b := range g.backends {
		byURL[b.url] = b
	}
	g.budget.deposit()

	minWait := time.Duration(-1)
	next := 0
	// takeNext consumes the next breaker-admitted candidate in the
	// key's rendezvous order. Breaker skips are free: no request was
	// sent, so moving past an ejected backend costs no budget.
	takeNext := func() *gwBackend {
		for next < len(order) {
			b := byURL[order[next]]
			next++
			if ok, wait := b.brk.allow(time.Now()); !ok {
				if minWait < 0 || wait < minWait {
					minWait = wait
				}
				g.reg.Count("gw.fwd|"+b.url+"|skipped", 1)
				continue
			}
			return b
		}
		return nil
	}

	results := make(chan attemptResult, len(order))
	outstanding := 0
	launch := func(b *gwBackend, hedged bool) {
		outstanding++
		b.budget.deposit()
		go g.attempt(r, endpoint, b.url, body, hedged, results)
	}

	primary := takeNext()
	if primary != nil {
		launch(primary, false)
	}
	var hedgeC <-chan time.Time
	if g.cfg.HedgeAfter > 0 && primary != nil && len(order) > 1 {
		t := time.NewTimer(g.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var winner, fallback *attemptResult
	for outstanding > 0 && winner == nil {
		select {
		case res := <-results:
			outstanding--
			b := byURL[res.url]
			switch {
			case res.err != nil:
				b.brk.report(time.Now(), false)
				g.reg.Count("gw.fwd|"+res.url+"|error", 1)
			case res.status >= 500:
				// Daemon-side failure: count it, remember it (if no
				// backend does better the client still deserves the
				// real error), and try the next candidate.
				b.brk.report(time.Now(), false)
				g.reg.Count("gw.fwd|"+res.url+"|http_5xx", 1)
				res := res
				fallback = &res
			default:
				// Anything below 500 — success, client error, or 429
				// backpressure — is a healthy daemon answering.
				b.brk.report(time.Now(), true)
				g.reg.Count("gw.fwd|"+res.url+"|ok", 1)
				res := res
				winner = &res
			}
			if winner == nil {
				// Failed attempt: budgeted failover, charged to the
				// backend that failed.
				if g.allowExtra(b, "retry") {
					if nb := takeNext(); nb != nil {
						launch(nb, false)
					}
				}
			}
		case <-hedgeC:
			// The primary is straggling: launch a duplicate on the next
			// candidate, charged to the straggler's budget.
			hedgeC = nil
			if g.allowExtra(primary, "hedge") {
				if nb := takeNext(); nb != nil {
					g.reg.Count("gw.hedge.launched", 1)
					launch(nb, true)
				}
			}
		case <-r.Context().Done():
			// Our client hung up; nothing left to answer. Stragglers
			// still feed the breakers off-request.
			g.drainStragglers(nil, results, outstanding, byURL)
			return
		}
	}

	if winner == nil {
		if fallback != nil {
			relay(w, fallback.status, fallback.header, fallback.body, fallback.url)
			return
		}
		// Every backend skipped or unreachable with nothing to relay.
		g.reg.Count("gw.unavailable", 1)
		if minWait > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(max(minWait/time.Second, 1))))
		}
		writeResult(w, jsonError(http.StatusServiceUnavailable, "no backend available"))
		return
	}
	if winner.hedged {
		g.reg.Count("gw.hedge.won", 1)
	}
	g.drainStragglers(winner, results, outstanding, byURL)
	relay(w, winner.status, winner.header, winner.body, winner.url)
}

// attempt issues one proxied request. It is deliberately detached from
// the client's context: a hedge straggler must be allowed to finish
// after the winner is relayed so its bytes can be compared against the
// winner's (the hedging soundness check); g.client.Timeout bounds the
// detachment.
func (g *Gateway) attempt(r *http.Request, endpoint, url string, body []byte, hedged bool, results chan<- attemptResult) {
	req, err := http.NewRequestWithContext(context.WithoutCancel(r.Context()),
		http.MethodPost, url+"/"+endpoint, bytes.NewReader(body))
	if err != nil {
		results <- attemptResult{url: url, hedged: hedged, err: err}
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		results <- attemptResult{url: url, hedged: hedged, err: err}
		return
	}
	respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes+1))
	resp.Body.Close()
	if rerr != nil {
		results <- attemptResult{url: url, hedged: hedged, err: rerr}
		return
	}
	results <- attemptResult{url: url, status: resp.StatusCode, header: resp.Header, body: respBody, hedged: hedged}
}

// allowExtra spends one extra-attempt token from both the global budget
// and the causing backend's. Charging the causer is what keeps one sick
// backend from draining the whole farm's retry capacity. A denial is
// counted (gw.retry.denied / gw.hedge.denied) and the extra attempt
// simply doesn't happen.
func (g *Gateway) allowExtra(cause *gwBackend, kind string) bool {
	if cause.budget.withdraw() && g.budget.withdraw() {
		return true
	}
	g.reg.Count("gw."+kind+".denied", 1)
	return false
}

// drainStragglers consumes attempts still in flight after the request
// has been answered (or abandoned), off the request goroutine: their
// outcomes still feed the breakers, and — the hedging soundness check —
// when both the winner and a straggler returned 200 for the same body,
// the bodies must be byte-identical (gw.hedge.mismatch counts
// violations; the chaos harness asserts it stays zero).
func (g *Gateway) drainStragglers(winner *attemptResult, results chan attemptResult, outstanding int, byURL map[string]*gwBackend) {
	if outstanding <= 0 {
		return
	}
	go func() {
		for i := 0; i < outstanding; i++ {
			res := <-results
			b := byURL[res.url]
			switch {
			case res.err != nil:
				b.brk.report(time.Now(), false)
				g.reg.Count("gw.fwd|"+res.url+"|error", 1)
			case res.status >= 500:
				b.brk.report(time.Now(), false)
				g.reg.Count("gw.fwd|"+res.url+"|http_5xx", 1)
			default:
				b.brk.report(time.Now(), true)
				g.reg.Count("gw.fwd|"+res.url+"|ok", 1)
				if winner != nil && winner.status == http.StatusOK && res.status == http.StatusOK &&
					!bytes.Equal(winner.body, res.body) {
					g.reg.Count("gw.hedge.mismatch", 1)
				}
			}
		}
	}()
}

// startProbes runs the active health-probe loop: every ProbeInterval,
// each backend its breaker currently admits gets a GET /healthz with a
// short deadline, and the outcome feeds the breaker exactly like user
// traffic would. In half-open state the probe takes the breaker's
// single trial slot, so an ejected daemon is revived (or re-ejected) on
// the cooldown schedule without sacrificing a user request to find out.
func (g *Gateway) startProbes() {
	timeout := g.cfg.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	g.probeClient = &http.Client{Timeout: timeout}
	g.probeStop = make(chan struct{})
	g.probeDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(g.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				g.probeOnce()
			}
		}
	}(g.probeStop, g.probeDone)
}

// probeOnce probes every admitted backend concurrently and waits for
// the round to finish (the per-probe timeout bounds the wait).
func (g *Gateway) probeOnce() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		if ok, _ := b.brk.allow(time.Now()); !ok {
			continue
		}
		wg.Add(1)
		go func(b *gwBackend) {
			defer wg.Done()
			resp, err := g.probeClient.Get(b.url + "/healthz")
			healthy := err == nil && resp.StatusCode < 500
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			b.brk.report(time.Now(), healthy)
			outcome := "ok"
			if !healthy {
				outcome = "fail"
			}
			g.reg.Count("gw.probe|"+b.url+"|"+outcome, 1)
		}(b)
	}
	wg.Wait()
}

// relay copies a backend response onto the client connection, headers
// first (verbatim), stamped with the serving backend.
func relay(w http.ResponseWriter, status int, header http.Header, body []byte, backend string) {
	for k, vs := range header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Hlogate-Backend", backend)
	w.WriteHeader(status)
	w.Write(body)
}
