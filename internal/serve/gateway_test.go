package serve_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestRendezvousOrderStableAndBalanced(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	if got := serve.RendezvousOrder("k1", backends); len(got) != 3 {
		t.Fatalf("order has %d entries, want 3", len(got))
	}
	// Deterministic: same key, same order, regardless of input slice order.
	a := serve.RendezvousOrder("k1", backends)
	b := serve.RendezvousOrder("k1", []string{"http://c", "http://a", "http://b"})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order depends on backend list order: %v vs %v", a, b)
		}
	}
	// Balanced-ish: over many keys every backend wins some.
	wins := map[string]int{}
	for i := 0; i < 300; i++ {
		wins[serve.RendezvousOrder(fmt.Sprintf("key-%d", i), backends)[0]]++
	}
	for _, be := range backends {
		if wins[be] == 0 {
			t.Fatalf("backend %s never ranked first across 300 keys: %v", be, wins)
		}
	}
	// Minimal disruption: dropping a backend must not remap keys it did
	// not own.
	two := []string{"http://a", "http://b"}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := serve.RendezvousOrder(key, backends)[0]
		if first == "http://c" {
			continue
		}
		if got := serve.RendezvousOrder(key, two)[0]; got != first {
			t.Fatalf("key %q moved from %s to %s when an unrelated backend left", key, first, got)
		}
	}
}

// stubBackend is a minimal hlod stand-in: counts /compile hits and
// echoes a recognizable body with a header worth forwarding.
func stubBackend(t *testing.T, name string, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("X-Hlod-Queue-Ms", "1.000")
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "7")
		}
		w.WriteHeader(status)
		fmt.Fprintf(w, "from %s\n", name)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func postGateway(t *testing.T, g *serve.Gateway, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/compile", strings.NewReader(body))
	rr := httptest.NewRecorder()
	g.ServeHTTP(rr, req)
	return rr
}

// TestGatewayShardsByBody: identical bodies always land on one backend;
// across many distinct bodies both backends see traffic.
func TestGatewayShardsByBody(t *testing.T) {
	a, hitsA := stubBackend(t, "a", http.StatusOK)
	b, hitsB := stubBackend(t, "b", http.StatusOK)
	g := serve.NewGateway(serve.GatewayConfig{Backends: []string{a.URL, b.URL}})

	var firstBackend string
	for i := 0; i < 5; i++ {
		rr := postGateway(t, g, `{"same":"body"}`)
		if rr.Code != http.StatusOK {
			t.Fatalf("status %d", rr.Code)
		}
		be := rr.Header().Get("X-Hlogate-Backend")
		if firstBackend == "" {
			firstBackend = be
		} else if be != firstBackend {
			t.Fatalf("same body bounced between backends: %s then %s", firstBackend, be)
		}
	}
	if hitsA.Load()+hitsB.Load() != 5 {
		t.Fatalf("backends saw %d+%d hits, want 5 total", hitsA.Load(), hitsB.Load())
	}
	for i := 0; i < 40; i++ {
		postGateway(t, g, fmt.Sprintf(`{"body":%d}`, i))
	}
	if hitsA.Load() == 0 || hitsB.Load() == 0 {
		t.Fatalf("traffic never spread: a=%d b=%d", hitsA.Load(), hitsB.Load())
	}
}

// TestGatewayForwardsBackpressure: a 429 with Retry-After is relayed
// verbatim and never rerouted — queue-full is a signal, not a failure.
func TestGatewayForwardsBackpressure(t *testing.T) {
	a, hitsA := stubBackend(t, "a", http.StatusTooManyRequests)
	b, hitsB := stubBackend(t, "b", http.StatusTooManyRequests)
	g := serve.NewGateway(serve.GatewayConfig{Backends: []string{a.URL, b.URL}})

	rr := postGateway(t, g, `{"x":1}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rr.Code)
	}
	if ra := rr.Header().Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the backend's 7", ra)
	}
	if qh := rr.Header().Get("X-Hlod-Queue-Ms"); qh == "" {
		t.Fatal("queue header not forwarded")
	}
	if hitsA.Load()+hitsB.Load() != 1 {
		t.Fatalf("429 was retried across backends: a=%d b=%d", hitsA.Load(), hitsB.Load())
	}
}

// TestGatewayFailsOverAndEjects: a dead backend's keys fail over to the
// survivor; after the breaker threshold the corpse is skipped outright
// and /healthz reports it ejected.
func TestGatewayFailsOverAndEjects(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from here on
	live, hits := stubBackend(t, "live", http.StatusOK)
	backends := []string{deadURL, live.URL}
	g := serve.NewGateway(serve.GatewayConfig{Backends: backends, BreakerThreshold: 2})

	// Pick bodies whose rendezvous primary is the corpse, so every
	// request exercises the failover path and the breaker must trip
	// (random bodies can land all-live and leave the corpse untested).
	var bodies []string
	for i := 0; len(bodies) < 8; i++ {
		body := fmt.Sprintf(`{"n":%d}`, i)
		if serve.RendezvousOrder("compile\x00"+body, backends)[0] == deadURL {
			bodies = append(bodies, body)
		}
	}
	for i, body := range bodies {
		rr := postGateway(t, g, body)
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via failover", i, rr.Code)
		}
		if be := rr.Header().Get("X-Hlogate-Backend"); be != live.URL {
			t.Fatalf("request %d served by %q, want the live backend", i, be)
		}
	}
	if hits.Load() != 8 {
		t.Fatalf("live backend saw %d hits, want all 8", hits.Load())
	}

	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrr := httptest.NewRecorder()
	g.ServeHTTP(hrr, hreq)
	if hrr.Code != http.StatusOK {
		t.Fatalf("healthz = %d with one live backend", hrr.Code)
	}
	if !strings.Contains(hrr.Body.String(), "ejected") {
		t.Fatalf("healthz does not report the dead backend ejected:\n%s", hrr.Body.String())
	}
}

// TestGatewayAllBackendsDown: nothing reachable yields 503 (with a
// Retry-After once the breakers are open), not a hang or a panic.
func TestGatewayAllBackendsDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	g := serve.NewGateway(serve.GatewayConfig{Backends: []string{deadURL}, BreakerThreshold: 1})

	if rr := postGateway(t, g, `{}`); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rr.Code)
	}
	rr := postGateway(t, g, `{}`) // breaker now open: skipped, not dialed
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("open-breaker 503 missing Retry-After")
	}
}

// TestGatewayDrain mirrors hlod: draining fails /healthz and refuses
// new work so a load balancer upstream stops routing here.
func TestGatewayDrain(t *testing.T) {
	a, _ := stubBackend(t, "a", http.StatusOK)
	g := serve.NewGateway(serve.GatewayConfig{Backends: []string{a.URL}})
	g.StartDrain()
	if rr := postGateway(t, g, `{}`); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("work status %d while draining, want 503", rr.Code)
	}
	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrr := httptest.NewRecorder()
	g.ServeHTTP(hrr, hreq)
	if hrr.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d while draining, want 503", hrr.Code)
	}
}

// TestGatewayEndToEndFarm wires the real thing: two hlod servers over
// one shared store behind the gateway. The same body via the gate twice
// must hit the farm cache the second time, and the bytes must match a
// direct backend request.
func TestGatewayEndToEndFarm(t *testing.T) {
	dir := t.TempDir()
	_, tsa := farmServer(t, dir, "a")
	_, tsb := farmServer(t, dir, "b")
	g := serve.NewGateway(serve.GatewayConfig{Backends: []string{tsa.URL, tsb.URL}})
	gts := httptest.NewServer(g)
	defer gts.Close()

	r1, body1 := postCompile(t, gts.URL)
	if r1.Header.Get("X-Hlogate-Backend") == "" {
		t.Fatal("response not stamped with the serving backend")
	}
	r2, body2 := postCompile(t, gts.URL)
	if r2.Header.Get("X-Hlod-Cache") != "hit" {
		t.Fatal("second request through the gate was not a farm cache hit")
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("gateway responses differ across the cache fill")
	}
	// Byte-identical with a direct request to either daemon.
	direct, err := http.Post(tsa.URL+"/compile", "application/json", bytes.NewReader(farmBody))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Body.Close()
	directBody, _ := io.ReadAll(direct.Body)
	if !bytes.Equal(directBody, body1) {
		t.Fatal("direct and gated responses differ")
	}
}

// gwCounter reads one gateway counter by exact name.
func gwCounter(g *serve.Gateway, name string) int64 {
	for _, c := range g.Registry().Counters() {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// bodyRoutedTo finds a request body whose rendezvous-first backend is
// the given URL, so failover/hedge tests can aim traffic at a specific
// primary.
func bodyRoutedTo(t *testing.T, primary string, backends []string) string {
	t.Helper()
	for i := 0; i < 200; i++ {
		body := fmt.Sprintf(`{"aim":%d}`, i)
		if serve.RendezvousOrder("compile\x00"+body, backends)[0] == primary {
			return body
		}
	}
	t.Fatal("no body routed to the requested primary in 200 tries")
	return ""
}

// TestGatewayHedgesStraggler: with HedgeAfter set, a straggling primary
// gets a duplicate attempt on the next backend and the client is served
// by whichever answers first — here the hedge, in well under the
// straggler's delay. Both stubs return identical bytes (as real daemons
// do for one body), so the soundness check must count zero mismatches.
func TestGatewayHedgesStraggler(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "identical answer")
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "identical answer")
	}))
	defer fast.Close()

	backends := []string{slow.URL, fast.URL}
	g := serve.NewGateway(serve.GatewayConfig{Backends: backends, HedgeAfter: 20 * time.Millisecond})
	defer g.Close()
	body := bodyRoutedTo(t, slow.URL, backends)

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postGateway(t, g, body) }()
	var rr *httptest.ResponseRecorder
	select {
	case rr = <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hedge never fired; request stuck behind the straggler")
	}
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 from the hedge", rr.Code)
	}
	if be := rr.Header().Get("X-Hlogate-Backend"); be != fast.URL {
		t.Fatalf("served by %q, want the hedged backend %q", be, fast.URL)
	}
	if gwCounter(g, "gw.hedge.launched") == 0 || gwCounter(g, "gw.hedge.won") == 0 {
		t.Fatal("hedge launch/win not recorded")
	}
	// Let the straggler finish and be compared against the winner.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for gwCounter(g, "gw.fwd|"+slow.URL+"|ok") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("straggler result never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := gwCounter(g, "gw.hedge.mismatch"); n != 0 {
		t.Fatalf("identical responses flagged as %d mismatches", n)
	}
}

// TestGatewayHedgeMismatchDetected: if a hedged pair ever returns
// different bytes for the same body — which the farm's determinism
// promises cannot happen — the soundness counter must say so.
func TestGatewayHedgeMismatchDetected(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "slow bytes")
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "fast bytes")
	}))
	defer fast.Close()

	backends := []string{slow.URL, fast.URL}
	g := serve.NewGateway(serve.GatewayConfig{Backends: backends, HedgeAfter: 20 * time.Millisecond})
	defer g.Close()
	body := bodyRoutedTo(t, slow.URL, backends)

	if rr := postGateway(t, g, body); rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for gwCounter(g, "gw.hedge.mismatch") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("divergent hedge pair never flagged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGatewayRetryBudgetExhaustion: with a tiny burst and a negligible
// deposit ratio, a dead primary is only worth its burst's failovers;
// after that the retry is denied and the client sees the honest 503
// instead of the farm absorbing an unbounded retry storm.
func TestGatewayRetryBudgetExhaustion(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	live, _ := stubBackend(t, "live", http.StatusOK)
	backends := []string{deadURL, live.URL}
	g := serve.NewGateway(serve.GatewayConfig{
		Backends:         backends,
		BreakerThreshold: 1000, // keep the breaker out of the way: this test is about budgets
		RetryBudget:      0.001,
		RetryBurst:       2,
	})
	defer g.Close()
	body := bodyRoutedTo(t, deadURL, backends)

	codes := map[int]int{}
	for i := 0; i < 6; i++ {
		codes[postGateway(t, g, body).Code]++
	}
	if codes[http.StatusOK] != 2 {
		t.Fatalf("failovers served = %d, want exactly the burst of 2 (codes %v)", codes[http.StatusOK], codes)
	}
	if codes[http.StatusServiceUnavailable] != 4 {
		t.Fatalf("503s = %d, want 4 after the budget dried up (codes %v)", codes[http.StatusServiceUnavailable], codes)
	}
	if gwCounter(g, "gw.retry.denied") != 4 {
		t.Fatalf("gw.retry.denied = %d, want 4", gwCounter(g, "gw.retry.denied"))
	}
}

// TestGatewayProbesDriveBreaker: active probes alone — no user traffic
// — must eject a backend whose /healthz starts failing and revive it
// when it recovers.
func TestGatewayProbesDriveBreaker(t *testing.T) {
	var down atomic.Bool
	be := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer be.Close()
	g := serve.NewGateway(serve.GatewayConfig{
		Backends:         []string{be.URL},
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		ProbeInterval:    10 * time.Millisecond,
	})
	defer g.Close()

	healthz := func() *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		g.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		return rr
	}
	waitFor := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	down.Store(true)
	waitFor("probe-driven ejection", func() bool {
		return gwCounter(g, "gw.probe|"+be.URL+"|fail") >= 2 &&
			strings.Contains(healthz().Body.String(), "ejected")
	})
	down.Store(false)
	// Revival is real only once a probe has actually succeeded (healthz
	// alone shows a transient "up" window whenever the cooldown lapses).
	waitFor("probe-driven revival", func() bool {
		return gwCounter(g, "gw.probe|"+be.URL+"|ok") >= 1 &&
			!strings.Contains(healthz().Body.String(), "ejected")
	})
}
