package serve

import (
	"bufio"
	"fmt"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the fixed upper bounds (seconds) of every latency
// histogram the server exports. The spread covers sub-millisecond cache
// hits up to the 2-minute request ceiling; Prometheus convention adds a
// +Inf bucket at render time.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is one endpoint's latency distribution: per-bucket counts
// (non-cumulative in memory, accumulated at render time), total count,
// and the sum of observations.
type histogram struct {
	counts []uint64 // len(latencyBuckets)
	inf    uint64
	count  uint64
	sum    float64
}

// histVec is a histogram family keyed by endpoint label.
type histVec struct {
	mu sync.Mutex
	by map[string]*histogram
}

// observe records one latency sample for the endpoint.
func (v *histVec) observe(endpoint string, d time.Duration) {
	sec := d.Seconds()
	v.mu.Lock()
	if v.by == nil {
		v.by = make(map[string]*histogram)
	}
	h := v.by[endpoint]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		v.by[endpoint] = h
	}
	placed := false
	for i, le := range latencyBuckets {
		if sec <= le {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.count++
	h.sum += sec
	v.mu.Unlock()
}

// write renders the family in the Prometheus text format with
// cumulative le buckets, _sum and _count, endpoints sorted for
// deterministic output.
func (v *histVec) write(bw *bufio.Writer, name, help string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.by) == 0 {
		return
	}
	endpoints := make([]string, 0, len(v.by))
	for ep := range v.by {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
	fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
	for _, ep := range endpoints {
		h := v.by[ep]
		var cum uint64
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(bw, "%s_bucket{endpoint=%q,le=%q} %d\n", name, ep, formatLE(le), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, ep, cum+h.inf)
		fmt.Fprintf(bw, "%s_sum{endpoint=%q} %g\n", name, ep, h.sum)
		fmt.Fprintf(bw, "%s_count{endpoint=%q} %d\n", name, ep, h.count)
	}
}

// formatLE renders a bucket bound the way Prometheus clients expect:
// shortest decimal form, no exponent for these magnitudes.
func formatLE(le float64) string {
	return fmt.Sprintf("%g", le)
}
