package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/specsuite"
)

// LoadConfig configures a load-generation run against a live hlod.
type LoadConfig struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Backends, when non-empty, turns on client-side sharding: each
	// request body routes to the first entry of RendezvousOrder(key,
	// Backends) — the same placement hlogate computes — and BaseURL is
	// ignored. This is the farm's "no gateway" client mode.
	Backends []string
	// Rate switches the run from closed-loop (Clients requesters, each
	// waiting for its response) to open-loop: arrivals are a Poisson
	// process at Rate requests/second regardless of how fast the server
	// answers, which is how real clients behave and the only shape that
	// reveals a saturated daemon's true backlog. Arrivals beyond
	// MaxOutstanding in-flight requests are dropped and counted, never
	// queued client-side. Open-loop sends have no retry loop — a 429 is
	// an outcome, not a do-over.
	Rate float64
	// MaxOutstanding bounds in-flight requests in open-loop mode
	// (default 64).
	MaxOutstanding int
	// Stages, when non-empty, runs a ramp: each stage is a closed-loop
	// run at its own client count, sequentially, reusing the connection
	// pool — so the report shows throughput and latency as concurrency
	// climbs. Overrides Clients/Duration/Rate.
	Stages []Stage
	// Clients is the number of concurrent requesters (default 4).
	Clients int
	// Duration is how long to keep sending (default 10s).
	Duration time.Duration
	// Endpoint is "compile" or "run" (default "compile").
	Endpoint string
	// Benchmarks names the specsuite programs to cycle through; empty
	// means a small fast trio.
	Benchmarks []string
	// Budgets are HLO budgets cycled across requests so consecutive
	// requests differ (exercising the cache rather than single-flight);
	// empty means {50, 100, 150, 200}.
	Budgets []int
	// Profile turns on PBO (training runs) for every request.
	Profile bool
	// CrossModule compiles at link-time scope (default matches the
	// paper's "c"/"cp" rows; base scope if false).
	CrossModule bool
	// ClientTimeout caps each HTTP request (default 2m).
	ClientTimeout time.Duration
	// Retry tunes 429/transport-failure handling: jittered exponential
	// backoff honoring Retry-After, a per-request retry budget, and a
	// shared circuit breaker. The zero value keeps the historical flat
	// 50ms pause.
	Retry RetryConfig
}

// Stage is one rung of a ramping load run: Clients closed-loop
// requesters for Duration.
type Stage struct {
	Clients  int           `json:"clients"`
	Duration time.Duration `json:"-"`
}

// StageReport is one rung's outcome inside a ramp run.
type StageReport struct {
	Clients    int     `json:"clients"`
	WallS      float64 `json:"wall_s"`
	Requests   int     `json:"requests"`
	Rejected   int     `json:"rejected_429"`
	Throughput float64 `json:"throughput_rps"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	QueueP99MS float64 `json:"queue_p99_ms"`
}

// LoadReport summarizes a load run. BadResponses counts everything
// that is neither 2xx nor 429 — under admission control those are the
// only healthy answers, so any other status (or transport error) marks
// the run unhealthy.
type LoadReport struct {
	Requests        int            `json:"requests"`
	TransportErrors int            `json:"transport_errors"`
	Rejected        int            `json:"rejected_429"`
	BadResponses    int            `json:"bad_responses"`
	Retries         int            `json:"retries"`
	Dropped         int            `json:"dropped"` // bodies abandoned after the retry budget
	BreakerOpens    int64          `json:"breaker_opens"`
	ByStatus        map[string]int `json:"by_status"`
	WallS           float64        `json:"wall_s"`
	Throughput      float64        `json:"throughput_rps"` // 2xx completions per second
	P50MS           float64        `json:"p50_ms"`
	P90MS           float64        `json:"p90_ms"`
	P99MS           float64        `json:"p99_ms"`
	MaxMS           float64        `json:"max_ms"`
	// Queue-wait vs service-time split, parsed from the daemon's
	// X-Hlod-Queue-Ms / X-Hlod-Service-Ms response headers on 2xx
	// responses. Queue percentiles rising while service percentiles hold
	// means the daemon is saturated, not slower.
	QueueP50MS   float64 `json:"queue_p50_ms"`
	QueueP99MS   float64 `json:"queue_p99_ms"`
	ServiceP50MS float64 `json:"service_p50_ms"`
	ServiceP99MS float64 `json:"service_p99_ms"`
	// Open-loop (Rate > 0) extras: the arrival rate actually offered and
	// how many arrivals were shed client-side because MaxOutstanding
	// requests were already in flight — the signal that the server fell
	// behind the offered load.
	OfferedRPS float64 `json:"offered_rps,omitempty"`
	Overload   int     `json:"overload_dropped,omitempty"`
	// Ramp (Stages) extras: one report rung per stage; the top-level
	// percentiles then describe the final (peak) stage.
	Stages []StageReport `json:"stages,omitempty"`
}

// Healthy reports whether the run saw only 2xx/429 responses and no
// transport errors.
func (r *LoadReport) Healthy() bool {
	return r.TransportErrors == 0 && r.BadResponses == 0
}

// clientStats accumulates one requester's outcomes; summarize folds a
// slice of them into a LoadReport.
type clientStats struct {
	latenciesMS []float64
	queueMS     []float64
	serviceMS   []float64
	byStatus    map[int]int
	transport   int
	retries     int
	dropped     int
}

// RunLoad drives load at a daemon (or a farm) and aggregates throughput
// and latency percentiles (measured over successful 2xx requests). The
// default shape is closed-loop: Clients concurrent requesters cycling
// the benchmark × budget matrix for Duration, each waiting for its
// response. Rate > 0 switches to open-loop Poisson arrivals; Stages
// runs a closed-loop ramp. Backends turns on client-side rendezvous
// sharding in any shape.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Endpoint == "" {
		cfg.Endpoint = "compile"
	}
	if cfg.Endpoint != "compile" && cfg.Endpoint != "run" {
		return nil, fmt.Errorf("loadgen: unknown endpoint %q", cfg.Endpoint)
	}
	if len(cfg.Benchmarks) == 0 {
		cfg.Benchmarks = []string{"022.li", "026.compress", "008.espresso"}
	}
	if len(cfg.Budgets) == 0 {
		cfg.Budgets = []int{50, 100, 150, 200}
	}
	if cfg.ClientTimeout <= 0 {
		cfg.ClientTimeout = 2 * time.Minute
	}
	if len(cfg.Stages) > 0 {
		return runStages(ctx, cfg)
	}

	bodies, err := loadBodies(cfg)
	if err != nil {
		return nil, err
	}
	urls := targetURLs(cfg, bodies)
	if cfg.Rate > 0 {
		return runOpenLoop(ctx, cfg, bodies, urls)
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	client := &http.Client{Timeout: cfg.ClientTimeout}

	retry := cfg.Retry.withDefaults()
	brk := newBreaker(retry)
	stats := make([]clientStats, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.byStatus = make(map[int]int)
			bo := newBackoff(retry, c)
			pause := func(d time.Duration) bool {
				select {
				case <-time.After(d):
					return true
				case <-ctx.Done():
					return false
				}
			}
			for i := c; ctx.Err() == nil; i++ {
				body := bodies[i%len(bodies)]
				url := urls[i%len(bodies)]
				// Retry loop for this body: 429s and transport errors back
				// off and resend; anything else moves to the next body.
				for attempt := 0; ctx.Err() == nil; {
					if ok, wait := brk.allow(time.Now()); !ok {
						if !pause(wait) {
							return
						}
						continue
					}
					t0 := time.Now()
					req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
					if err != nil {
						st.transport++
						brk.report(time.Now(), false)
						break
					}
					req.Header.Set("Content-Type", "application/json")
					resp, err := client.Do(req)
					retryAfter := time.Duration(0)
					retryable := false
					if err != nil {
						if ctx.Err() != nil {
							return // run over; an aborted in-flight request is not an error
						}
						st.transport++
						retryable = true
					} else {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						st.byStatus[resp.StatusCode]++
						if resp.StatusCode/100 == 2 {
							st.latenciesMS = append(st.latenciesMS, float64(time.Since(t0))/float64(time.Millisecond))
							if v, ok := parseMSHeader(resp, "X-Hlod-Queue-Ms"); ok {
								st.queueMS = append(st.queueMS, v)
							}
							if v, ok := parseMSHeader(resp, "X-Hlod-Service-Ms"); ok {
								st.serviceMS = append(st.serviceMS, v)
							}
						}
						retryable = resp.StatusCode == http.StatusTooManyRequests
						retryAfter = parseRetryAfter(resp)
					}
					brk.report(time.Now(), !retryable)
					if !retryable {
						break
					}
					if retry.Retries > 0 && attempt+1 >= retry.Retries {
						st.dropped++ // budget spent; abandon this body
						break
					}
					st.retries++
					if !pause(bo.delay(attempt, retryAfter)) {
						return
					}
					attempt++
				}
			}
		}(c)
	}
	wg.Wait()
	return summarize(stats, time.Since(start), brk.opens), nil
}

// summarize folds per-requester stats into one report; percentiles are
// over 2xx requests only.
func summarize(stats []clientStats, wall time.Duration, opens int64) *LoadReport {
	rep := &LoadReport{ByStatus: make(map[string]int), WallS: wall.Seconds()}
	var lat, queue, service []float64
	rep.BreakerOpens = opens
	for i := range stats {
		st := &stats[i]
		rep.TransportErrors += st.transport
		rep.Retries += st.retries
		rep.Dropped += st.dropped
		for code, n := range st.byStatus {
			rep.Requests += n
			rep.ByStatus[fmt.Sprintf("%d", code)] += n
			switch {
			case code/100 == 2:
			case code == http.StatusTooManyRequests:
				rep.Rejected += n
			default:
				rep.BadResponses += n
			}
		}
		lat = append(lat, st.latenciesMS...)
		queue = append(queue, st.queueMS...)
		service = append(service, st.serviceMS...)
	}
	rep.Requests += rep.TransportErrors
	sort.Float64s(lat)
	if n := len(lat); n > 0 {
		rep.Throughput = float64(n) / wall.Seconds()
		rep.P50MS = lat[n*50/100]
		rep.P90MS = lat[n*90/100]
		rep.P99MS = lat[n*99/100]
		rep.MaxMS = lat[n-1]
	}
	sort.Float64s(queue)
	if n := len(queue); n > 0 {
		rep.QueueP50MS = queue[n*50/100]
		rep.QueueP99MS = queue[n*99/100]
	}
	sort.Float64s(service)
	if n := len(service); n > 0 {
		rep.ServiceP50MS = service[n*50/100]
		rep.ServiceP99MS = service[n*99/100]
	}
	return rep
}

// targetURLs resolves each body's destination once, up front: BaseURL
// for a single daemon (or a gateway), or the body's first-choice
// backend under rendezvous hashing — the identical placement hlogate
// computes, so a farm behaves the same whether the client shards or the
// gate does.
func targetURLs(cfg LoadConfig, bodies [][]byte) []string {
	urls := make([]string, len(bodies))
	for i, body := range bodies {
		base := cfg.BaseURL
		if len(cfg.Backends) > 0 {
			base = RendezvousOrder(cfg.Endpoint+"\x00"+string(body), cfg.Backends)[0]
		}
		urls[i] = base + "/" + cfg.Endpoint
	}
	return urls
}

// runStages runs cfg.Stages sequentially as independent closed-loop
// runs (Rate is ignored: a ramp sweeps concurrency, not arrival rate)
// and merges their totals. The combined report's percentiles are the
// final stage's — the numbers at peak concurrency — while per-stage
// rungs carry the whole curve.
func runStages(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	total := &LoadReport{ByStatus: make(map[string]int)}
	for _, stg := range cfg.Stages {
		if ctx.Err() != nil {
			break
		}
		sc := cfg
		sc.Stages = nil
		sc.Rate = 0
		sc.Clients = stg.Clients
		sc.Duration = stg.Duration
		rep, err := RunLoad(ctx, sc)
		if err != nil {
			return nil, err
		}
		total.Stages = append(total.Stages, StageReport{
			Clients:    sc.Clients,
			WallS:      rep.WallS,
			Requests:   rep.Requests,
			Rejected:   rep.Rejected,
			Throughput: rep.Throughput,
			P50MS:      rep.P50MS,
			P99MS:      rep.P99MS,
			QueueP99MS: rep.QueueP99MS,
		})
		total.Requests += rep.Requests
		total.TransportErrors += rep.TransportErrors
		total.Rejected += rep.Rejected
		total.BadResponses += rep.BadResponses
		total.Retries += rep.Retries
		total.Dropped += rep.Dropped
		total.BreakerOpens += rep.BreakerOpens
		total.WallS += rep.WallS
		for k, v := range rep.ByStatus {
			total.ByStatus[k] += v
		}
		total.P50MS, total.P90MS, total.P99MS, total.MaxMS = rep.P50MS, rep.P90MS, rep.P99MS, rep.MaxMS
		total.QueueP50MS, total.QueueP99MS = rep.QueueP50MS, rep.QueueP99MS
		total.ServiceP50MS, total.ServiceP99MS = rep.ServiceP50MS, rep.ServiceP99MS
	}
	if ok := total.WallS > 0; ok {
		good := total.Requests - total.Rejected - total.BadResponses - total.TransportErrors
		total.Throughput = float64(good) / total.WallS
	}
	return total, nil
}

// runOpenLoop offers a Poisson arrival stream at cfg.Rate req/s. The
// inter-arrival sampler draws from the same seeded splitmix64 stream
// the backoff jitter uses, so a run with a fixed Retry.Seed replays the
// identical arrival schedule. Arrivals finding MaxOutstanding requests
// already in flight are shed and counted (Overload) — a client-side
// queue would just hide the server's backlog. In-flight requests at
// the end of the run are allowed to finish (bounded by ClientTimeout),
// matching how a real caller behaves when a load balancer drains.
func runOpenLoop(ctx context.Context, cfg LoadConfig, bodies [][]byte, urls []string) (*LoadReport, error) {
	maxOut := cfg.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 64
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	client := &http.Client{Timeout: cfg.ClientTimeout}

	// Arrival sampler: exponential inter-arrival times from the seeded
	// jitter stream (client index 1<<20 keeps it disjoint from any
	// closed-loop backoff stream under the same seed).
	rng := newBackoff(cfg.Retry.withDefaults(), 1<<20)
	nextGap := func() time.Duration {
		u := (float64(rng.next()>>11) + 0.5) / (1 << 53) // (0,1)
		return time.Duration(-math.Log(u) / cfg.Rate * float64(time.Second))
	}

	var (
		mu       sync.Mutex
		st       = clientStats{byStatus: make(map[int]int)}
		sem      = make(chan struct{}, maxOut)
		wg       sync.WaitGroup
		arrivals int
		overload int
	)
	start := time.Now()
arrive:
	for i := 0; ; i++ {
		select {
		case <-runCtx.Done():
			break arrive
		case <-time.After(nextGap()):
		}
		arrivals++
		select {
		case sem <- struct{}{}:
		default:
			overload++ // server (or the cap) fell behind the offered load
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			// Deliberately not runCtx: the run deadline stops new
			// arrivals, it does not abort work already offered.
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				urls[i%len(bodies)], bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				mu.Lock()
				st.transport++
				mu.Unlock()
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				st.transport++
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			st.byStatus[resp.StatusCode]++
			if resp.StatusCode/100 == 2 {
				st.latenciesMS = append(st.latenciesMS, float64(time.Since(t0))/float64(time.Millisecond))
				if v, ok := parseMSHeader(resp, "X-Hlod-Queue-Ms"); ok {
					st.queueMS = append(st.queueMS, v)
				}
				if v, ok := parseMSHeader(resp, "X-Hlod-Service-Ms"); ok {
					st.serviceMS = append(st.serviceMS, v)
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	rep := summarize([]clientStats{st}, wall, 0)
	rep.OfferedRPS = float64(arrivals) / wall.Seconds()
	rep.Overload = overload
	return rep, nil
}

// parseMSHeader reads a millisecond float header set by writeResult on
// executed work responses (absent on pre-admission rejections).
func parseMSHeader(resp *http.Response, name string) (float64, bool) {
	v := resp.Header.Get(name)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false
	}
	return ms, true
}

// loadBodies pre-renders the request matrix: every benchmark under
// every budget, so consecutive requests from one client differ and the
// server's caches (not just single-flight) carry the load.
func loadBodies(cfg LoadConfig) ([][]byte, error) {
	var bodies [][]byte
	for _, name := range cfg.Benchmarks {
		b, err := specsuite.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, budget := range cfg.Budgets {
			budget := budget
			creq := CompileRequest{
				Sources: b.Sources,
				Tag:     name,
				Options: OptionsJSON{
					CrossModule: cfg.CrossModule,
					Profile:     cfg.Profile,
					TrainInputs: b.Train,
					Budget:      &budget,
				},
			}
			var body []byte
			if cfg.Endpoint == "run" {
				body = mustMarshal(RunRequest{CompileRequest: creq, Inputs: b.Train})
			} else {
				body = mustMarshal(creq)
			}
			bodies = append(bodies, body)
		}
	}
	return bodies, nil
}
