package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/specsuite"
)

// LoadConfig configures a load-generation run against a live hlod.
type LoadConfig struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent requesters (default 4).
	Clients int
	// Duration is how long to keep sending (default 10s).
	Duration time.Duration
	// Endpoint is "compile" or "run" (default "compile").
	Endpoint string
	// Benchmarks names the specsuite programs to cycle through; empty
	// means a small fast trio.
	Benchmarks []string
	// Budgets are HLO budgets cycled across requests so consecutive
	// requests differ (exercising the cache rather than single-flight);
	// empty means {50, 100, 150, 200}.
	Budgets []int
	// Profile turns on PBO (training runs) for every request.
	Profile bool
	// CrossModule compiles at link-time scope (default matches the
	// paper's "c"/"cp" rows; base scope if false).
	CrossModule bool
	// ClientTimeout caps each HTTP request (default 2m).
	ClientTimeout time.Duration
	// Retry tunes 429/transport-failure handling: jittered exponential
	// backoff honoring Retry-After, a per-request retry budget, and a
	// shared circuit breaker. The zero value keeps the historical flat
	// 50ms pause.
	Retry RetryConfig
}

// LoadReport summarizes a load run. BadResponses counts everything
// that is neither 2xx nor 429 — under admission control those are the
// only healthy answers, so any other status (or transport error) marks
// the run unhealthy.
type LoadReport struct {
	Requests        int            `json:"requests"`
	TransportErrors int            `json:"transport_errors"`
	Rejected        int            `json:"rejected_429"`
	BadResponses    int            `json:"bad_responses"`
	Retries         int            `json:"retries"`
	Dropped         int            `json:"dropped"` // bodies abandoned after the retry budget
	BreakerOpens    int64          `json:"breaker_opens"`
	ByStatus        map[string]int `json:"by_status"`
	WallS           float64        `json:"wall_s"`
	Throughput      float64        `json:"throughput_rps"` // 2xx completions per second
	P50MS           float64        `json:"p50_ms"`
	P90MS           float64        `json:"p90_ms"`
	P99MS           float64        `json:"p99_ms"`
	MaxMS           float64        `json:"max_ms"`
	// Queue-wait vs service-time split, parsed from the daemon's
	// X-Hlod-Queue-Ms / X-Hlod-Service-Ms response headers on 2xx
	// responses. Queue percentiles rising while service percentiles hold
	// means the daemon is saturated, not slower.
	QueueP50MS   float64 `json:"queue_p50_ms"`
	QueueP99MS   float64 `json:"queue_p99_ms"`
	ServiceP50MS float64 `json:"service_p50_ms"`
	ServiceP99MS float64 `json:"service_p99_ms"`
}

// Healthy reports whether the run saw only 2xx/429 responses and no
// transport errors.
func (r *LoadReport) Healthy() bool {
	return r.TransportErrors == 0 && r.BadResponses == 0
}

// RunLoad drives Clients concurrent requesters over the benchmark ×
// budget matrix for Duration and aggregates throughput and latency
// percentiles (measured over successful 2xx requests).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Endpoint == "" {
		cfg.Endpoint = "compile"
	}
	if cfg.Endpoint != "compile" && cfg.Endpoint != "run" {
		return nil, fmt.Errorf("loadgen: unknown endpoint %q", cfg.Endpoint)
	}
	if len(cfg.Benchmarks) == 0 {
		cfg.Benchmarks = []string{"022.li", "026.compress", "008.espresso"}
	}
	if len(cfg.Budgets) == 0 {
		cfg.Budgets = []int{50, 100, 150, 200}
	}
	if cfg.ClientTimeout <= 0 {
		cfg.ClientTimeout = 2 * time.Minute
	}

	bodies, err := loadBodies(cfg)
	if err != nil {
		return nil, err
	}
	url := cfg.BaseURL + "/" + cfg.Endpoint

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	client := &http.Client{Timeout: cfg.ClientTimeout}

	type clientStats struct {
		latenciesMS []float64
		queueMS     []float64
		serviceMS   []float64
		byStatus    map[int]int
		transport   int
		retries     int
		dropped     int
	}
	retry := cfg.Retry.withDefaults()
	brk := newBreaker(retry)
	stats := make([]clientStats, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.byStatus = make(map[int]int)
			bo := newBackoff(retry, c)
			pause := func(d time.Duration) bool {
				select {
				case <-time.After(d):
					return true
				case <-ctx.Done():
					return false
				}
			}
			for i := c; ctx.Err() == nil; i++ {
				body := bodies[i%len(bodies)]
				// Retry loop for this body: 429s and transport errors back
				// off and resend; anything else moves to the next body.
				for attempt := 0; ctx.Err() == nil; {
					if ok, wait := brk.allow(time.Now()); !ok {
						if !pause(wait) {
							return
						}
						continue
					}
					t0 := time.Now()
					req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
					if err != nil {
						st.transport++
						brk.report(time.Now(), false)
						break
					}
					req.Header.Set("Content-Type", "application/json")
					resp, err := client.Do(req)
					retryAfter := time.Duration(0)
					retryable := false
					if err != nil {
						if ctx.Err() != nil {
							return // run over; an aborted in-flight request is not an error
						}
						st.transport++
						retryable = true
					} else {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						st.byStatus[resp.StatusCode]++
						if resp.StatusCode/100 == 2 {
							st.latenciesMS = append(st.latenciesMS, float64(time.Since(t0))/float64(time.Millisecond))
							if v, ok := parseMSHeader(resp, "X-Hlod-Queue-Ms"); ok {
								st.queueMS = append(st.queueMS, v)
							}
							if v, ok := parseMSHeader(resp, "X-Hlod-Service-Ms"); ok {
								st.serviceMS = append(st.serviceMS, v)
							}
						}
						retryable = resp.StatusCode == http.StatusTooManyRequests
						retryAfter = parseRetryAfter(resp)
					}
					brk.report(time.Now(), !retryable)
					if !retryable {
						break
					}
					if retry.Retries > 0 && attempt+1 >= retry.Retries {
						st.dropped++ // budget spent; abandon this body
						break
					}
					st.retries++
					if !pause(bo.delay(attempt, retryAfter)) {
						return
					}
					attempt++
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &LoadReport{ByStatus: make(map[string]int), WallS: wall.Seconds()}
	var lat, queue, service []float64
	rep.BreakerOpens = brk.opens
	for i := range stats {
		st := &stats[i]
		rep.TransportErrors += st.transport
		rep.Retries += st.retries
		rep.Dropped += st.dropped
		for code, n := range st.byStatus {
			rep.Requests += n
			rep.ByStatus[fmt.Sprintf("%d", code)] += n
			switch {
			case code/100 == 2:
			case code == http.StatusTooManyRequests:
				rep.Rejected += n
			default:
				rep.BadResponses += n
			}
		}
		lat = append(lat, st.latenciesMS...)
		queue = append(queue, st.queueMS...)
		service = append(service, st.serviceMS...)
	}
	rep.Requests += rep.TransportErrors
	sort.Float64s(lat)
	if n := len(lat); n > 0 {
		rep.Throughput = float64(n) / wall.Seconds()
		rep.P50MS = lat[n*50/100]
		rep.P90MS = lat[n*90/100]
		rep.P99MS = lat[n*99/100]
		rep.MaxMS = lat[n-1]
	}
	sort.Float64s(queue)
	if n := len(queue); n > 0 {
		rep.QueueP50MS = queue[n*50/100]
		rep.QueueP99MS = queue[n*99/100]
	}
	sort.Float64s(service)
	if n := len(service); n > 0 {
		rep.ServiceP50MS = service[n*50/100]
		rep.ServiceP99MS = service[n*99/100]
	}
	return rep, nil
}

// parseMSHeader reads a millisecond float header set by writeResult on
// executed work responses (absent on pre-admission rejections).
func parseMSHeader(resp *http.Response, name string) (float64, bool) {
	v := resp.Header.Get(name)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false
	}
	return ms, true
}

// loadBodies pre-renders the request matrix: every benchmark under
// every budget, so consecutive requests from one client differ and the
// server's caches (not just single-flight) carry the load.
func loadBodies(cfg LoadConfig) ([][]byte, error) {
	var bodies [][]byte
	for _, name := range cfg.Benchmarks {
		b, err := specsuite.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, budget := range cfg.Budgets {
			budget := budget
			creq := CompileRequest{
				Sources: b.Sources,
				Tag:     name,
				Options: OptionsJSON{
					CrossModule: cfg.CrossModule,
					Profile:     cfg.Profile,
					TrainInputs: b.Train,
					Budget:      &budget,
				},
			}
			var body []byte
			if cfg.Endpoint == "run" {
				body = mustMarshal(RunRequest{CompileRequest: creq, Inputs: b.Train})
			} else {
				body = mustMarshal(creq)
			}
			bodies = append(bodies, body)
		}
	}
	return bodies, nil
}
