package serve_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// stubDaemon answers every work request 200 after delay, counting hits.
func stubDaemon(t *testing.T, delay time.Duration) (*httptest.Server, func() int) {
	t.Helper()
	var mu sync.Mutex
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			time.Sleep(delay)
		}
		mu.Lock()
		hits++
		mu.Unlock()
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(ts.Close)
	return ts, func() int { mu.Lock(); defer mu.Unlock(); return hits }
}

func TestRunLoadStagesRamp(t *testing.T) {
	ts, hits := stubDaemon(t, 0)
	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL: ts.URL,
		Stages: []serve.Stage{
			{Clients: 1, Duration: 150 * time.Millisecond},
			{Clients: 2, Duration: 150 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("stage rungs = %d, want 2", len(rep.Stages))
	}
	if rep.Stages[0].Clients != 1 || rep.Stages[1].Clients != 2 {
		t.Fatalf("stage client counts = %d,%d", rep.Stages[0].Clients, rep.Stages[1].Clients)
	}
	if got := rep.Stages[0].Requests + rep.Stages[1].Requests; got != rep.Requests {
		t.Fatalf("stage requests sum to %d, total says %d", got, rep.Requests)
	}
	// The server may see a few more than the client counted: a request
	// in flight when a stage's clock expires is abandoned uncounted.
	if rep.Requests == 0 || hits() < rep.Requests || hits() > rep.Requests+4 {
		t.Fatalf("requests = %d, server saw %d", rep.Requests, hits())
	}
	if !rep.Healthy() {
		t.Fatalf("unhealthy ramp: %+v", rep)
	}
}

func TestRunLoadOpenLoopPoisson(t *testing.T) {
	ts, hits := stubDaemon(t, 0)
	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:  ts.URL,
		Rate:     300,
		Duration: 300 * time.Millisecond,
		Retry:    serve.RetryConfig{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open-loop run sent nothing")
	}
	if rep.OfferedRPS <= 0 {
		t.Fatalf("offered rate = %v, want > 0", rep.OfferedRPS)
	}
	if hits() < rep.Requests {
		t.Fatalf("requests = %d, server saw only %d", rep.Requests, hits())
	}
	if !rep.Healthy() {
		t.Fatalf("unhealthy open-loop run: %+v", rep)
	}
	// Determinism: the same seed replays the same arrival schedule, so
	// the offered count should be extremely close across runs (the wall
	// clock jitters the tail arrival, so allow one).
	rep2, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:  ts.URL,
		Rate:     300,
		Duration: 300 * time.Millisecond,
		Retry:    serve.RetryConfig{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.OfferedRPS - rep2.OfferedRPS; d > 60 || d < -60 {
		t.Errorf("seeded arrival rates diverged: %.1f vs %.1f", rep.OfferedRPS, rep2.OfferedRPS)
	}
}

func TestRunLoadOpenLoopShedsOverload(t *testing.T) {
	ts, _ := stubDaemon(t, 80*time.Millisecond) // slow daemon
	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:        ts.URL,
		Rate:           400,
		Duration:       250 * time.Millisecond,
		MaxOutstanding: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overload == 0 {
		t.Fatalf("no arrivals shed at 400 req/s against an 80ms daemon with 1 outstanding: %+v", rep)
	}
}

// TestRunLoadBackendsShard: client-side rendezvous sharding sends each
// body to exactly one backend, and the matrix spreads across both.
func TestRunLoadBackendsShard(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]map[string]bool{} // body -> set of backends
	mkBackend := func(name string) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			mu.Lock()
			if seen[string(body)] == nil {
				seen[string(body)] = map[string]bool{}
			}
			seen[string(body)][name] = true
			mu.Unlock()
			w.Write([]byte(`{}`))
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := mkBackend("a"), mkBackend("b")
	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Backends: []string{a.URL, b.URL},
		Clients:  2,
		Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || !rep.Healthy() {
		t.Fatalf("bad sharded run: %+v", rep)
	}
	backends := map[string]bool{}
	mu.Lock() // a shed request's handler may still be mid-write server-side
	defer mu.Unlock()
	for body, bes := range seen {
		if len(bes) != 1 {
			t.Fatalf("body %.40q landed on %d backends, want exactly 1", body, len(bes))
		}
		for be := range bes {
			backends[be] = true
		}
	}
	if len(backends) != 2 {
		t.Fatalf("only %d backend(s) saw traffic across the 12-body matrix", len(backends))
	}
}
