package serve

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// writeMetrics renders the server's live state in the Prometheus text
// exposition format:
//
//   - hlod_requests_total{endpoint,code} — HTTP requests by outcome,
//     reconstructed from the registry's "http.req|<endpoint>|<code>"
//     counters;
//   - hlod_counter{name} — every other counter in the server-lifetime
//     registry, i.e. the merged per-request obs recorders (hlo.inlines,
//     sim.cycles, backend.code-size, ...);
//   - admission gauges (workers, busy, queued, capacity, totals),
//     single-flight hits, and uptime.
func writeMetrics(w io.Writer, s *Server) error {
	bw := bufio.NewWriter(w)
	st := s.adm.state()

	fmt.Fprintf(bw, "# HELP hlod_up Whether the daemon is serving (0 while draining).\n")
	fmt.Fprintf(bw, "# TYPE hlod_up gauge\n")
	up := 1
	if s.draining.Load() {
		up = 0
	}
	fmt.Fprintf(bw, "hlod_up %d\n", up)
	fmt.Fprintf(bw, "# TYPE hlod_uptime_seconds gauge\n")
	fmt.Fprintf(bw, "hlod_uptime_seconds %.3f\n", time.Since(s.start).Seconds())

	fmt.Fprintf(bw, "# HELP hlod_workers Size of the compile worker pool.\n")
	fmt.Fprintf(bw, "# TYPE hlod_workers gauge\n")
	fmt.Fprintf(bw, "hlod_workers %d\n", st.Workers)
	fmt.Fprintf(bw, "# TYPE hlod_busy_workers gauge\n")
	fmt.Fprintf(bw, "hlod_busy_workers %d\n", st.Busy)
	fmt.Fprintf(bw, "# TYPE hlod_queue_capacity gauge\n")
	fmt.Fprintf(bw, "hlod_queue_capacity %d\n", st.QueueDepth)
	fmt.Fprintf(bw, "# TYPE hlod_queued gauge\n")
	fmt.Fprintf(bw, "hlod_queued %d\n", st.Queued)
	fmt.Fprintf(bw, "# TYPE hlod_admitted_total counter\n")
	fmt.Fprintf(bw, "hlod_admitted_total %d\n", st.AdmittedTotal)
	fmt.Fprintf(bw, "# TYPE hlod_rejected_total counter\n")
	fmt.Fprintf(bw, "hlod_rejected_total %d\n", st.RejectedTotal)
	fmt.Fprintf(bw, "# TYPE hlod_completed_total counter\n")
	fmt.Fprintf(bw, "hlod_completed_total %d\n", st.CompletedTotal)
	fmt.Fprintf(bw, "# TYPE hlod_dedup_hits_total counter\n")
	fmt.Fprintf(bw, "hlod_dedup_hits_total %d\n", s.flights.dedupHits())

	// Farm tier: the shared artifact store's operation counters
	// (hits/misses/puts/evictions/quarantines and the lease protocol's
	// acquires/waits/takeovers), present only when -cache-dir is set.
	if s.store != nil {
		cs := s.store.Counters()
		names := make([]string, 0, len(cs))
		for name := range cs {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(bw, "# HELP hlod_cas Shared artifact store operations by kind.\n")
		fmt.Fprintf(bw, "# TYPE hlod_cas counter\n")
		for _, name := range names {
			fmt.Fprintf(bw, "hlod_cas{op=%q} %d\n", name, cs[name])
		}
		fmt.Fprintf(bw, "# TYPE hlod_cas_bytes gauge\n")
		fmt.Fprintf(bw, "hlod_cas_bytes %d\n", s.store.SizeBytes())
	}
	fmt.Fprintf(bw, "# HELP hlod_panics_total Worker panics contained by the per-request recover boundary.\n")
	fmt.Fprintf(bw, "# TYPE hlod_panics_total counter\n")
	var panics int64
	for _, c := range s.reg.Counters() {
		if c.Name == "serve.panics" {
			panics = c.Value
			break
		}
	}
	fmt.Fprintf(bw, "hlod_panics_total %d\n", panics)

	// Per-endpoint latency histograms. hlod_request_seconds covers every
	// request end to end; for executed work requests the queue-wait vs
	// service-time pair splits that latency into "waited for a worker
	// slot" and "actually compiled/simulated" — the saturation signal.
	s.histReq.write(bw, "hlod_request_seconds", "HTTP request latency by endpoint.")
	s.histQueue.write(bw, "hlod_queue_wait_seconds", "Admission queue wait of executed work requests.")
	s.histService.write(bw, "hlod_service_seconds", "Execution time of admitted work requests (excludes queueing).")

	// Registry counters, split into request counters and the rest. The
	// obs registry returns counters sorted by name, so the rendering is
	// deterministic. serve.panics gets a dedicated always-present series
	// (alerting on a counter that only appears after the first panic is
	// awkward; see hlod_panics_total above), so it is skipped here.
	var reqLines, counterLines []string
	for _, c := range s.reg.Counters() {
		if c.Name == "serve.panics" {
			continue
		}
		if rest, ok := strings.CutPrefix(c.Name, "http.req|"); ok {
			parts := strings.SplitN(rest, "|", 2)
			if len(parts) == 2 {
				reqLines = append(reqLines, fmt.Sprintf(
					"hlod_requests_total{endpoint=%q,code=%q} %d", parts[0], parts[1], c.Value))
				continue
			}
		}
		// %q escaping matches the Prometheus label rules for the plain
		// ASCII names the registry holds: \\ for backslash, \" for the
		// double quote, \n for newline.
		counterLines = append(counterLines, fmt.Sprintf(
			"hlod_counter{name=%q} %d", c.Name, c.Value))
	}
	sort.Strings(reqLines)
	if len(reqLines) > 0 {
		fmt.Fprintf(bw, "# HELP hlod_requests_total HTTP requests by endpoint and status code.\n")
		fmt.Fprintf(bw, "# TYPE hlod_requests_total counter\n")
		for _, l := range reqLines {
			fmt.Fprintln(bw, l)
		}
	}
	if len(counterLines) > 0 {
		fmt.Fprintf(bw, "# HELP hlod_counter Pipeline counters merged from per-request recorders.\n")
		fmt.Fprintf(bw, "# TYPE hlod_counter counter\n")
		for _, l := range counterLines {
			fmt.Fprintln(bw, l)
		}
	}
	return bw.Flush()
}
