package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the access
// log (the server writes entries after the response has been sent).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestQueueServiceHeaders verifies every executed work request carries
// the queue-wait vs service-time split in response headers, and that
// the two parse as non-negative millisecond floats.
func TestQueueServiceHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/run", runBody(t, 100, 100))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	for _, h := range []string{"X-Hlod-Queue-Ms", "X-Hlod-Service-Ms"} {
		v := resp.Header.Get(h)
		if v == "" {
			t.Fatalf("%s header missing", h)
		}
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			t.Errorf("%s = %q, want non-negative float", h, v)
		}
	}

}

// TestDrainRejectCarriesNoSplit verifies requests refused before
// admission (here: while draining) carry no queue/service headers —
// the split only describes work that actually executed.
func TestDrainRejectCarriesNoSplit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.StartDrain()
	resp, _ := postJSON(t, ts.URL+"/run", runBody(t, 100, 100))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if v := resp.Header.Get("X-Hlod-Queue-Ms"); v != "" {
		t.Errorf("rejected request has X-Hlod-Queue-Ms = %q, want unset", v)
	}
}

// TestMetricsHistograms verifies /metrics renders the three latency
// histogram families with cumulative le buckets, +Inf, _sum and _count.
func TestMetricsHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	if resp, body := postJSON(t, ts.URL+"/run", runBody(t, 100, 100)); resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()

	for _, fam := range []string{"hlod_request_seconds", "hlod_queue_wait_seconds", "hlod_service_seconds"} {
		if !strings.Contains(text, "# TYPE "+fam+" histogram") {
			t.Errorf("missing TYPE line for %s", fam)
		}
		if !strings.Contains(text, fam+`_bucket{endpoint="run",le="+Inf"}`) {
			t.Errorf("missing +Inf bucket for %s\n%s", fam, text)
		}
		if !strings.Contains(text, fam+`_sum{endpoint="run"}`) ||
			!strings.Contains(text, fam+`_count{endpoint="run"}`) {
			t.Errorf("missing _sum/_count for %s", fam)
		}
	}
	// Buckets must be cumulative: +Inf count >= any finite bucket, and
	// the request histogram saw at least the /run request.
	if !strings.Contains(text, `hlod_request_seconds_count{endpoint="run"} 1`) {
		t.Errorf("hlod_request_seconds_count{run} != 1:\n%s", text)
	}
}

// TestPprofMount verifies /debug/pprof/ is reachable only when
// Config.Pprof is set, and that pprof traffic is labeled "pprof" (one
// endpoint label, not a per-URL explosion).
func TestPprofMount(t *testing.T) {
	_, on := newTestServer(t, Config{Workers: 1, Pprof: true})
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index with Pprof=true: status %d", resp.StatusCode)
	}

	_, off := newTestServer(t, Config{Workers: 1})
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof index with Pprof=false: status %d, want 404", resp.StatusCode)
	}

	if got := endpointLabel("/debug/pprof/heap"); got != "pprof" {
		t.Errorf("endpointLabel(/debug/pprof/heap) = %q, want pprof", got)
	}
}

// TestCompileSpansResponse verifies `"spans": true` adds the aggregated
// phase attribution to the /compile response.
func TestCompileSpansResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	req := CompileRequest{
		Sources: []string{slowSource},
		Spans:   true,
	}
	resp, body := postJSON(t, ts.URL+"/compile", mustMarshal(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Phases) == 0 {
		t.Fatalf("Phases empty with spans:true: %s", body)
	}
	names := make(map[string]bool)
	for _, p := range cr.Phases {
		names[p.Name] = true
		if p.Count <= 0 {
			t.Errorf("phase %s has Count %d", p.Name, p.Count)
		}
	}
	if !names["request/compile"] {
		t.Errorf("no request/compile phase in %v", cr.Phases)
	}

	// Without the flag the field stays absent.
	req.Spans = false
	_, body = postJSON(t, ts.URL+"/compile", mustMarshal(req))
	if bytes.Contains(body, []byte(`"phases"`)) {
		t.Errorf("phases present without spans:true: %s", body)
	}
}

// TestLogShutdown verifies the terminal access-log record: counters
// from the server-lifetime registry and the still-open "server" span
// marked open.
func TestLogShutdown(t *testing.T) {
	var logBuf syncBuffer
	s, ts := newTestServer(t, Config{Workers: 1, AccessLog: &logBuf})

	if resp, body := postJSON(t, ts.URL+"/run", runBody(t, 100, 100)); resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, body)
	}
	s.LogShutdown()

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	last := lines[len(lines)-1]
	var entry struct {
		Event     string           `json:"event"`
		UptimeSec float64          `json:"uptime_s"`
		Counters  map[string]int64 `json:"counters"`
		OpenSpans []struct {
			Name string `json:"name"`
			Open bool   `json:"open"`
		} `json:"open_spans"`
	}
	if err := json.Unmarshal([]byte(last), &entry); err != nil {
		t.Fatalf("last log line not JSON: %v\n%s", err, last)
	}
	if entry.Event != "shutdown" {
		t.Fatalf("last line event = %q, want shutdown:\n%s", entry.Event, last)
	}
	if entry.UptimeSec <= 0 {
		t.Errorf("uptime_s = %v", entry.UptimeSec)
	}
	if entry.Counters["http.req|run|200"] != 1 {
		t.Errorf("counters missing http.req|run|200: %v", entry.Counters)
	}
	if entry.Counters["sim.cycles"] <= 0 {
		t.Errorf("counters missing merged pipeline counter sim.cycles: %v", entry.Counters)
	}
	var server bool
	for _, sp := range entry.OpenSpans {
		if !sp.Open {
			t.Errorf("span %q in open_spans not marked open", sp.Name)
		}
		if sp.Name == "server" {
			server = true
		}
	}
	if !server {
		t.Errorf("open_spans missing the server lifetime span: %s", last)
	}
}
