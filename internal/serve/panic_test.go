package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/resilience"
)

// TestWorkerPanicContained verifies the daemon's per-request recover
// boundary: a panic inside a worker (injected at serve/dispatch) turns
// into a 500 with an error body, increments hlod_panics_total, releases
// the worker slot, and leaves the daemon serving later requests
// normally.
func TestWorkerPanicContained(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	resilience.DisarmAll()
	t.Cleanup(resilience.DisarmAll)
	if _, err := resilience.Arm("serve/dispatch", 0); err != nil {
		t.Fatal(err)
	}

	body := mustMarshal(CompileRequest{Sources: []string{slowSource}})
	resp, data := postJSON(t, ts.URL+"/compile", body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted request: status %d, want 500; body: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "internal error") ||
		!strings.Contains(string(data), "serve/dispatch") {
		t.Errorf("faulted request body %q, want an internal-error message naming the fault", data)
	}

	// The slot was released and the point disarmed itself as it fired,
	// so the same request now compiles on the single worker.
	resp, data = postJSON(t, ts.URL+"/compile", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status %d, want 200; body: %s", resp.StatusCode, data)
	}
	if st := s.adm.state(); st.Busy != 0 || st.Queued != 0 {
		t.Errorf("admission state after panic: busy=%d queued=%d, want 0/0", st.Busy, st.Queued)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if metrics := readAll(t, mresp); !strings.Contains(metrics, "hlod_panics_total 1") {
		t.Errorf("metrics missing hlod_panics_total 1:\n%s", metrics)
	}
}

// TestPanicsMetricAlwaysPresent pins the always-present rendering: a
// fresh daemon that has never panicked still exports the series at 0,
// so alert rules can rely on it existing.
func TestPanicsMetricAlwaysPresent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if body := readAll(t, resp); !strings.Contains(body, "hlod_panics_total 0") {
		t.Errorf("metrics missing hlod_panics_total 0:\n%s", body)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(data)
}
