package serve

import (
	"testing"
)

// compileBody builds a /compile request body with the given policy spec
// and otherwise identical inputs.
func compileBody(pol string) []byte {
	req := CompileRequest{
		Sources: []string{"module m;\nfunc main() int { return 40 + 2; }"},
		Options: OptionsJSON{Policy: pol},
	}
	return mustMarshal(req)
}

// TestResponseKeysDistinguishPolicies is the satellite regression for
// the policy lab: two requests with identical inputs but different
// decision policies must never share a response-cache or single-flight
// key, while equivalent spellings of one policy canonicalize to the
// same identity.
func TestResponseKeysDistinguishPolicies(t *testing.T) {
	polB := policyIdentity(compileBody("bottomup"))
	polP := policyIdentity(compileBody("priority"))
	if polB == polP {
		t.Fatalf("bottomup and priority share policy identity %q", polB)
	}
	// The structural guarantee: even with byte-identical bodies (as after
	// a hypothetical body normalization), the keyed policy identity keeps
	// the cache entries apart.
	same := []byte(`normalized-body`)
	if respKey("compile", polB, same) == respKey("compile", polP, same) {
		t.Fatal("respKey ignores the policy identity")
	}

	// Equivalent spellings of one configuration are one identity: the
	// default, the explicit name, and the parameterized default.
	if got := policyIdentity(compileBody("")); got != "greedy" {
		t.Fatalf("identity of default policy = %q, want %q", got, "greedy")
	}
	if got := policyIdentity(compileBody("greedy")); got != "greedy" {
		t.Fatalf("identity of explicit greedy = %q, want %q", got, "greedy")
	}
	if a, b := policyIdentity(compileBody("bottomup")), policyIdentity(compileBody("bottomup:bloat=300")); a != b {
		t.Fatalf("bare and parameterized default spellings diverge: %q vs %q", a, b)
	}
	if a, b := policyIdentity(compileBody("bottomup:bloat=150")), policyIdentity(compileBody("bottomup:bloat=300")); a == b {
		t.Fatalf("different bloat parameters share identity %q", a)
	}

	// Malformed specs key by raw spelling (they 400 before executing);
	// two different typos must not alias.
	if a, b := policyIdentity(compileBody("nope")), policyIdentity(compileBody("nope2")); a == b {
		t.Fatalf("distinct malformed specs share identity %q", a)
	}
}
