package serve

import (
	"net/http/pprof"
	"strings"
)

// mountPprof exposes the standard net/http/pprof handlers on the
// server's own mux (the daemon serves one mux, never the ambient
// http.DefaultServeMux, so the stdlib's init-time registration does not
// apply). Goroutine/heap/CPU profiles of a live daemon carry the
// runtime/pprof labels the work handlers attach — endpoint, tag, phase
// — so `go tool pprof` can slice a profile by benchmark or pipeline
// stage.
func (s *Server) mountPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// pprofPath reports whether the request path belongs to the pprof tree
// (for endpoint labeling).
func pprofPath(path string) bool {
	return strings.HasPrefix(path, "/debug/pprof")
}
