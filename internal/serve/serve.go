// Package serve is the compilation-as-a-service front door: an HTTP
// daemon (cmd/hlod) exposing the full driver pipeline — compile,
// compile+simulate, and PBO training — with the robustness features a
// long-lived service needs layered over the batch toolchain:
//
//   - Admission control: a bounded queue in front of a par-style
//     worker pool. When the queue is full the server answers 429 with
//     a Retry-After estimate instead of accumulating goroutines.
//   - Cancellation: each request's context (client disconnect and/or
//     per-request deadline) is threaded through driver.CompileCtx into
//     HLO's pass loop, the interpreter's step budget, and the PA8000
//     model, so abandoned work unwinds promptly at every layer.
//   - Single-flight deduplication: concurrent byte-identical requests
//     share one execution and one response, on top of a shared
//     driver.Cache that memoizes front-end and training work across
//     requests.
//   - Observability: every executed request gets a private
//     obs.Recorder; its counters merge into a server-lifetime registry
//     served as Prometheus text at /metrics (remarks and spans stay
//     per-request, so the registry's memory is bounded). Structured
//     JSON access logs record every request.
//
// Endpoints: POST /compile, POST /run, POST /train; GET /healthz,
// GET /queue, GET /metrics.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/driver"
	"repro/internal/obs"
	"repro/internal/pa8000"
	"repro/internal/profile"
	"repro/internal/resilience"
)

// ptDispatch is the fault-injection point of the worker dispatch (armed
// only by fault campaigns; see internal/resilience).
var ptDispatch = resilience.Register("serve/dispatch", resilience.KindDegrade)

// Config tunes the server. The zero value is serviceable: a
// GOMAXPROCS-sized pool, a queue twice that deep, a 2-minute
// per-request ceiling, an 8 MiB body limit, no access log.
type Config struct {
	// Workers is the size of the compile pool; <= 0 means one per CPU
	// (par.DefaultWorkers).
	Workers int
	// QueueDepth bounds how many admitted-but-waiting requests may
	// exist; beyond it the server sheds load with 429. <= 0 means
	// 2×Workers.
	QueueDepth int
	// RequestTimeout caps every request's execution time; requests may
	// ask for less via timeout_ms but never more. <= 0 means 2m.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies. <= 0 means 8 MiB.
	MaxBodyBytes int64
	// AccessLog, when non-nil, receives one JSON line per finished
	// request.
	AccessLog io.Writer
	// Cache is the compilation cache shared by all requests; nil means
	// a fresh one.
	Cache *driver.Cache
	// Store, when non-nil, is the compile farm's shared persistent
	// artifact store (hlod -cache-dir): rendered 200 responses are
	// cached and replayed by content address, cache fills are
	// single-flighted across every process sharing the directory, and
	// the driver cache gains its disk tier (warm starts).
	Store *cas.Store
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ on
	// the server's mux (the daemon never serves http.DefaultServeMux).
	Pprof bool
}

// Server is the HTTP handler. Create with New; it is immutable after
// creation apart from the internal registries.
type Server struct {
	cfg     Config
	adm     *admission
	flights flightGroup
	cache   *driver.Cache
	store   *cas.Store    // farm tier; nil for a standalone daemon
	reg     *obs.Recorder // server-lifetime counter registry
	log     *accessLogger
	mux     *http.ServeMux
	start   time.Time
	// life is the server-lifetime span on reg, opened at New and never
	// ended while serving: the shutdown flush reports it open/truncated,
	// which is exactly what it is.
	life     obs.Timer
	draining atomic.Bool
	// Per-endpoint latency histograms (seconds): total request time for
	// every endpoint, and the queue-wait vs service-time split for
	// executed work requests.
	histReq     histVec
	histQueue   histVec
	histService histVec
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * newAdmission(cfg.Workers, 0).workers
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Cache == nil {
		cfg.Cache = driver.NewCache()
	}
	if cfg.Store != nil {
		cfg.Cache.SetStore(cfg.Store)
	}
	s := &Server{
		cfg:   cfg,
		adm:   newAdmission(cfg.Workers, cfg.QueueDepth),
		cache: cfg.Cache,
		store: cfg.Store,
		reg:   obs.New(),
		log:   newAccessLogger(cfg.AccessLog),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.life = s.reg.Begin("server")
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/queue", s.handleQueue)
	s.mux.HandleFunc("/compile", s.workHandler("compile", s.buildCompile))
	s.mux.HandleFunc("/run", s.workHandler("run", s.buildRun))
	s.mux.HandleFunc("/train", s.workHandler("train", s.buildTrain))
	if cfg.Pprof {
		s.mountPprof()
	}
	return s
}

// StartDrain flips the server into draining mode: /healthz turns 503
// (so load balancers stop routing here) and new work is refused, while
// requests already admitted run to completion. Used by cmd/hlod's
// SIGTERM handler before http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Registry exposes the server-lifetime counter registry (tests and
// embedders).
func (s *Server) Registry() *obs.Recorder { return s.reg }

// Store exposes the farm's artifact store; nil for a standalone daemon.
func (s *Server) Store() *cas.Store { return s.store }

// LogShutdown writes the terminal access-log record: the full
// server-lifetime counter registry plus every span still open, marked
// truncated ("open": true) — at minimum the "server" lifetime span.
// cmd/hlod calls this after http.Server.Shutdown completes, so a
// drained daemon's last log line carries everything the registry
// accumulated instead of discarding it with the process.
func (s *Server) LogShutdown() {
	entry := shutdownEntry{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Event:     "shutdown",
		UptimeSec: time.Since(s.start).Seconds(),
	}
	if cs := s.reg.Counters(); len(cs) > 0 {
		entry.Counters = make(map[string]int64, len(cs))
		for _, c := range cs {
			entry.Counters[c.Name] = c.Value
		}
	}
	for _, sp := range s.reg.Spans() {
		if sp.Open {
			entry.OpenSpans = append(entry.OpenSpans, sp)
		}
	}
	s.log.logJSON(entry)
}

// Queue exposes the live admission snapshot (tests and embedders).
func (s *Server) Queue() QueueState { return s.adm.state() }

// requestMeta rides the request context so the outer access-log
// middleware can see what the handler learned.
type requestMeta struct {
	dedup   bool
	cached  bool
	timeout bool
	err     string
}

type metaKey struct{}

// statusWriter captures the status code and byte count for logging and
// the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// ServeHTTP dispatches to the mux under the logging/counting wrapper.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	meta := &requestMeta{}
	r = r.WithContext(context.WithValue(r.Context(), metaKey{}, meta))
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		// Handler wrote nothing: the client went away mid-request. Log
		// the nginx convention for client-closed-request.
		status = 499
	}
	s.histReq.observe(endpointLabel(r.URL.Path), time.Since(start))
	s.reg.Count("http.req|"+endpointLabel(r.URL.Path)+"|"+strconv.Itoa(status), 1)
	s.log.log(accessEntry{
		Method:  r.Method,
		Path:    r.URL.Path,
		Status:  status,
		DurMS:   float64(time.Since(start)) / float64(time.Millisecond),
		Bytes:   sw.bytes,
		Remote:  r.RemoteAddr,
		Dedup:   meta.dedup,
		Cached:  meta.cached,
		Timeout: meta.timeout,
		Err:     meta.err,
	})
}

// endpointLabel keeps the metrics cardinality bounded: known paths map
// to themselves (sans slash), the pprof tree collapses to one label,
// everything else to "other".
func endpointLabel(path string) string {
	switch path {
	case "/compile", "/run", "/train", "/healthz", "/metrics", "/queue":
		return path[1:]
	}
	if pprofPath(path) {
		return "pprof"
	}
	return "other"
}

func meta(ctx context.Context) *requestMeta {
	if m, ok := ctx.Value(metaKey{}).(*requestMeta); ok {
		return m
	}
	return &requestMeta{}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s)
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	data, _ := json.MarshalIndent(s.adm.state(), "", "  ")
	w.Write(append(data, '\n'))
}

// jsonError renders an error body for the given status.
func jsonError(status int, msg string) *flightResult {
	body, _ := json.Marshal(map[string]string{"error": msg})
	return &flightResult{
		status:      status,
		contentType: "application/json",
		body:        append(body, '\n'),
	}
}

// workHandler wraps one work endpoint with the full service spine:
// method/drain checks, body limits, single-flight coalescing, and
// admission control. build runs the actual work once admitted.
func (s *Server) workHandler(endpoint string, build func(ctx context.Context, body []byte) *flightResult) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := meta(r.Context())
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeResult(w, jsonError(http.StatusMethodNotAllowed, "POST required"))
			return
		}
		if s.draining.Load() {
			writeResult(w, jsonError(http.StatusServiceUnavailable, "draining"))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeResult(w, jsonError(http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)))
				return
			}
			m.err = "read body: " + err.Error()
			return // client gone mid-upload; nothing to write
		}

		// The flight key is endpoint + canonical policy identity + body
		// hash. The body hash alone already separates distinct requests;
		// keying the policy identity explicitly (like respKey does for the
		// farm tier) guarantees two policies can never share a flight even
		// if the body form is normalized before hashing some day.
		sum := sha256.Sum256(body)
		pol := policyIdentity(body)
		key := endpoint + "\x00" + pol + "\x00" + string(sum[:])
		res, shared, err := s.flights.do(r.Context(), key, func() *flightResult {
			return s.executeFarm(r.Context(), endpoint, pol, body, build)
		})
		if err != nil {
			// Our own client disconnected while we waited on a flight.
			m.err = "client gone: " + err.Error()
			return
		}
		if res.canceled {
			// We were the leader and our client disconnected mid-work.
			m.err = "client gone mid-request"
			return
		}
		m.dedup = shared
		m.cached = res.cached
		if res.status == http.StatusGatewayTimeout {
			m.timeout = true
		}
		writeResult(w, res)
	}
}

// execute admits the request into the worker pool and runs build under
// the per-request deadline. Queue-full and cancellation outcomes are
// rendered here so every path yields a flightResult. The admission wait
// and the guarded execution are timed separately — the queue-wait vs
// service-time split that distinguishes "the server is saturated" from
// "compiles are slow" — and recorded both on the result (response
// headers) and in the per-endpoint histograms. The build runs under a
// runtime/pprof endpoint label, so a CPU profile of the daemon can be
// sliced per endpoint.
func (s *Server) execute(ctx context.Context, endpoint string, body []byte, build func(ctx context.Context, body []byte) *flightResult) *flightResult {
	q0 := time.Now()
	release, retryAfter, err := s.adm.admit(ctx)
	queueWait := time.Since(q0)
	if errors.Is(err, errQueueFull) {
		res := jsonError(http.StatusTooManyRequests, "compile queue full, retry later")
		res.retryAfter = retryAfter
		return res
	}
	if err != nil {
		return &flightResult{canceled: true} // our client gave up while queued
	}
	defer release()
	s0 := time.Now()
	var res *flightResult
	pprof.Do(ctx, pprof.Labels("endpoint", endpoint), func(ctx context.Context) {
		res = s.runGuarded(ctx, body, build)
	})
	service := time.Since(s0)
	s.histQueue.observe(endpoint, queueWait)
	s.histService.observe(endpoint, service)
	res.queueNS = queueWait.Nanoseconds()
	res.serviceNS = service.Nanoseconds()
	res.timed = true
	return res
}

// runGuarded runs one admitted request under a recover boundary: a
// panic anywhere in the pipeline (or the serve/dispatch fault point)
// becomes a 500 carrying the panic value instead of killing the daemon,
// counted as serve.panics (exported as hlod_panics_total). The worker
// slot is released normally by execute's deferred release — a panicking
// request can never leak pool capacity.
func (s *Server) runGuarded(ctx context.Context, body []byte, build func(ctx context.Context, body []byte) *flightResult) (res *flightResult) {
	defer func() {
		if r := recover(); r != nil {
			s.reg.Count("serve.panics", 1)
			res = jsonError(http.StatusInternalServerError, fmt.Sprintf("internal error: %v", r))
		}
	}()
	ptDispatch.Inject()
	return build(ctx, body)
}

// deadline derives the execution context for one request: the client's
// context bounded by the server ceiling, tightened further by the
// request's own timeout_ms.
func (s *Server) deadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return context.WithTimeout(ctx, d)
}

// finish classifies a failed pipeline stage. A deadline (server
// ceiling or the request's own timeout_ms) is a shareable 504 — an
// identical request would time out the same way. A plain cancellation
// can only mean the leader's client disconnected, so the flight is
// marked canceled and never shared; a waiting follower retries under
// its own live context. Everything else is a 422 compile-level
// failure.
func finish(err error) *flightResult {
	if errors.Is(err, context.DeadlineExceeded) {
		return jsonError(http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
	}
	if errors.Is(err, context.Canceled) {
		return &flightResult{canceled: true}
	}
	return jsonError(http.StatusUnprocessableEntity, err.Error())
}

// workLabels is the runtime/pprof label set for one pipeline stage of
// one request: the phase (compile/simulate/train) plus the client's
// self-reported tag (benchmark name, experiment cell) when present.
// Profiles scraped from /debug/pprof can then be sliced by either.
func workLabels(tag, phase string) pprof.LabelSet {
	if tag == "" {
		return pprof.Labels("phase", phase)
	}
	return pprof.Labels("phase", phase, "tag", tag)
}

// mergeCounters folds one request's recorder into the server-lifetime
// registry. Only counters cross over — remarks and spans stay with the
// request, so the registry cannot grow without bound.
func (s *Server) mergeCounters(rec *obs.Recorder) {
	for _, c := range rec.Counters() {
		s.reg.Count(c.Name, c.Value)
	}
}

func (s *Server) buildCompile(ctx context.Context, body []byte) *flightResult {
	var req CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return jsonError(http.StatusBadRequest, "bad request: "+err.Error())
	}
	if err := req.validate(); err != nil {
		return jsonError(http.StatusBadRequest, "bad request: "+err.Error())
	}
	opts, err := req.Options.driverOptions()
	if err != nil {
		return jsonError(http.StatusBadRequest, "bad request: "+err.Error())
	}
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()

	rec := obs.New()
	opts.Obs = rec
	opts.Cache = s.cache
	var c *driver.Compilation
	rsp := rec.Begin("request/compile")
	pprof.Do(ctx, workLabels(req.Tag, "compile"), func(ctx context.Context) {
		c, err = driver.CompileCtx(ctx, req.Sources, opts)
	})
	rsp.End()
	s.mergeCounters(rec)
	if err != nil {
		return finish(err)
	}
	return s.jsonResult(buildCompileResponse(c, rec, req.Remarks, req.Spans))
}

func (s *Server) buildRun(ctx context.Context, body []byte) *flightResult {
	var req RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return jsonError(http.StatusBadRequest, "bad request: "+err.Error())
	}
	if err := req.validate(); err != nil {
		return jsonError(http.StatusBadRequest, "bad request: "+err.Error())
	}
	opts, err := req.Options.driverOptions()
	if err != nil {
		return jsonError(http.StatusBadRequest, "bad request: "+err.Error())
	}
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()

	rec := obs.New()
	opts.Obs = rec
	opts.Cache = s.cache
	var c *driver.Compilation
	rsp := rec.Begin("request/run")
	pprof.Do(ctx, workLabels(req.Tag, "compile"), func(ctx context.Context) {
		c, err = driver.CompileCtx(ctx, req.Sources, opts)
	})
	if err != nil {
		rsp.End()
		s.mergeCounters(rec)
		return finish(err)
	}
	var st *pa8000.Stats
	pprof.Do(ctx, workLabels(req.Tag, "simulate"), func(ctx context.Context) {
		st, err = c.RunCtx(ctx, opts, req.Inputs)
	})
	rsp.End()
	s.mergeCounters(rec)
	if err != nil {
		return finish(err)
	}
	return s.jsonResult(RunResponse{
		CompileResponse: buildCompileResponse(c, rec, req.Remarks, req.Spans),
		Sim:             st,
		CPI:             st.CPI(),
	})
}

func (s *Server) buildTrain(ctx context.Context, body []byte) *flightResult {
	var req TrainRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return jsonError(http.StatusBadRequest, "bad request: "+err.Error())
	}
	if err := req.validate(); err != nil {
		return jsonError(http.StatusBadRequest, "bad request: "+err.Error())
	}
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()

	rec := obs.New()
	var db *profile.Data
	var err2 error
	rsp := rec.Begin("request/train")
	pprof.Do(ctx, workLabels(req.Tag, "train"), func(ctx context.Context) {
		db, err2 = s.cache.TrainProfileObs(ctx, req.Sources, req.TrainInputs, req.ExtraTrainInputs, rec)
	})
	rsp.End()
	s.mergeCounters(rec)
	if err2 != nil {
		return finish(err2)
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		return jsonError(http.StatusInternalServerError, err.Error())
	}
	return &flightResult{
		status:      http.StatusOK,
		contentType: "text/plain; charset=utf-8",
		body:        buf.Bytes(),
	}
}

// writeResult flushes a flightResult onto the wire. Executed results
// carry the queue/service split as headers, so clients (hloload) can
// separate time spent waiting for a worker from time spent compiling
// without the server keeping any per-client state.
func writeResult(w http.ResponseWriter, res *flightResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(res.retryAfter))
	}
	if res.timed {
		w.Header().Set("X-Hlod-Queue-Ms", formatMS(res.queueNS))
		w.Header().Set("X-Hlod-Service-Ms", formatMS(res.serviceNS))
	}
	if res.cached {
		w.Header().Set("X-Hlod-Cache", "hit")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// formatMS renders nanoseconds as decimal milliseconds for the timing
// headers.
func formatMS(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e6, 'f', 3, 64)
}
