package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/obs"
	"repro/internal/specsuite"
)

// slowSource spins for input(0) iterations — roughly 7 machine
// instructions each, ~80M instructions/second on the PA8000 model — so
// tests can dial a request's duration via the input vector.
const slowSource = `
module slow;
extern func input(i int) int;

func spin(n int) int {
	var i int;
	var s int;
	i = 0;
	s = 0;
	while (i < n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}

func main() int {
	return spin(input(0));
}
`

const (
	// spinShort completes in a fraction of a second (a few seconds under
	// -race): the dedup test polls until the leader is mid-flight before
	// launching the follower, so this only needs to be slow enough for
	// that poll to land.
	spinShort = 2_000_000
	// spinLong would run ~15s+; tests that use it always cancel or time
	// the request out, never wait for completion.
	spinLong = 200_000_000
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

func runBody(t *testing.T, iters int64, budget int) []byte {
	t.Helper()
	b := budget
	return mustMarshal(RunRequest{
		CompileRequest: CompileRequest{
			Sources: []string{slowSource},
			Options: OptionsJSON{Budget: &b},
		},
		Inputs: []int64{iters},
	})
}

// waitFor polls cond for up to 10 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCompileMatchesDriver verifies the acceptance criterion that a
// /compile response is byte-identical to one assembled directly from
// driver.Compile with the same inputs.
func TestCompileMatchesDriver(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	bench, err := specsuite.ByName("022.li")
	if err != nil {
		t.Fatal(err)
	}
	budget := 150
	req := CompileRequest{
		Sources: bench.Sources,
		Options: OptionsJSON{
			CrossModule: true,
			Profile:     true,
			TrainInputs: bench.Train,
			Budget:      &budget,
		},
		Remarks: true,
	}
	resp, got := postJSON(t, ts.URL+"/compile", mustMarshal(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	// Assemble the same response directly from the driver.
	opts, err := req.Options.driverOptions()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	opts.Obs = rec
	opts.Cache = driver.NewCache()
	c, err := driver.CompileCtx(context.Background(), req.Sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := mustMarshal(buildCompileResponse(c, rec, req.Remarks, false))
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP response differs from direct driver.Compile:\n got: %s\nwant: %s", got, want)
	}
}

// TestTrainMatchesDriver verifies /train returns exactly the
// profile.Write text of a direct training run.
func TestTrainMatchesDriver(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	req := TrainRequest{Sources: []string{slowSource}, TrainInputs: []int64{5}}
	resp, got := postJSON(t, ts.URL+"/train", mustMarshal(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}

	db, err := driver.NewCache().TrainProfile(context.Background(), req.Sources, req.TrainInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := db.Write(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("/train differs from direct TrainProfile:\n got: %q\nwant: %q", got, want.Bytes())
	}
}

// TestQueueSaturation fills the single worker and the one-deep queue
// with slow simulations, then checks the next request is shed with 429
// and a Retry-After hint rather than queued without bound.
func TestQueueSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	launch := func(body []byte) chan error {
		done := make(chan error, 1)
		go func() {
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", bytes.NewReader(body))
			_, err := ts.Client().Do(req)
			done <- err
		}()
		return done
	}

	// Distinct budgets keep the three requests out of each other's
	// single-flight groups.
	aDone := launch(runBody(t, spinLong, 50))
	waitFor(t, "first request to occupy the worker", func() bool { return s.Queue().Busy == 1 })
	bDone := launch(runBody(t, spinLong, 60))
	waitFor(t, "second request to queue", func() bool { return s.Queue().Queued == 1 })

	resp, body := postJSON(t, ts.URL+"/run", runBody(t, spinLong, 70))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	} else if n, err := fmt.Sscanf(ra, "%d", new(int)); n != 1 || err != nil {
		t.Errorf("Retry-After %q is not an integer", ra)
	}
	if got := s.Queue().RejectedTotal; got != 1 {
		t.Errorf("RejectedTotal = %d, want 1", got)
	}

	// Abandon the in-flight pair; the server must unwind both promptly.
	cancel()
	<-aDone
	<-bDone
	waitFor(t, "worker and queue to empty after cancel", func() bool {
		q := s.Queue()
		return q.Busy == 0 && q.Queued == 0
	})
}

// TestCancelInFlightRun cancels a /run mid-simulation and checks the
// server unwinds promptly without leaking goroutines.
func TestCancelInFlightRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", bytes.NewReader(runBody(t, spinLong, 100)))
		_, err := ts.Client().Do(req)
		done <- err
	}()
	waitFor(t, "request to start executing", func() bool { return s.Queue().Busy == 1 })

	start := time.Now()
	cancel()
	err := <-done
	if err == nil {
		t.Fatal("canceled request returned a response")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}
	// The simulation checks its context every few thousand instructions;
	// the whole unwind should be near-instant, far under the ~15s the
	// simulation would otherwise run.
	waitFor(t, "worker slot release", func() bool { return s.Queue().Busy == 0 })
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v", d)
	}
	if got := s.Queue().CompletedTotal; got != 1 {
		t.Errorf("CompletedTotal = %d, want 1 (slot must be released)", got)
	}

	ts.Client().CloseIdleConnections()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

// TestSingleFlight sends two byte-identical /run requests concurrently
// and checks they share one execution and one response.
func TestSingleFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	body := runBody(t, spinShort, 100)
	type result struct {
		status int
		data   []byte
	}
	results := make(chan result, 2)
	post := func() {
		resp, data := postJSON(t, ts.URL+"/run", body)
		results <- result{resp.StatusCode, data}
	}
	go post()
	waitFor(t, "leader to start executing", func() bool { return s.Queue().Busy == 1 })
	go post()

	a, b := <-results, <-results
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200: %s %s", a.status, b.status, a.data, b.data)
	}
	if !bytes.Equal(a.data, b.data) {
		t.Errorf("deduplicated responses differ:\n%s\n%s", a.data, b.data)
	}
	if hits := s.flights.dedupHits(); hits != 1 {
		t.Errorf("dedupHits = %d, want 1", hits)
	}
	// Only the leader consumed a worker slot.
	if got := s.Queue().AdmittedTotal; got != 1 {
		t.Errorf("AdmittedTotal = %d, want 1 (follower must not occupy a slot)", got)
	}
	var run RunResponse
	if err := json.Unmarshal(a.data, &run); err != nil {
		t.Fatalf("bad run response: %v", err)
	}
	if run.Sim == nil || run.Sim.Instrs == 0 {
		t.Errorf("run response missing simulation stats: %s", a.data)
	}
}

// TestRequestTimeout checks that a request's own timeout_ms produces a
// 504 long before the simulation would finish.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	b := 100
	body := mustMarshal(RunRequest{
		CompileRequest: CompileRequest{
			Sources:   []string{slowSource},
			Options:   OptionsJSON{Budget: &b},
			TimeoutMS: 150,
		},
		Inputs: []int64{spinLong},
	})
	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/run", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, data)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("timeout took %v, want ~150ms", d)
	}
	if !bytes.Contains(data, []byte("deadline")) {
		t.Errorf("504 body %s does not mention the deadline", data)
	}
}

// TestRequestValidation covers the request-shape error paths.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1024})

	// Wrong method.
	resp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile = %d, want 405", resp.StatusCode)
	}

	// Malformed JSON.
	resp, data := postJSON(t, ts.URL+"/compile", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d (%s), want 400", resp.StatusCode, data)
	}

	// No sources.
	resp, data = postJSON(t, ts.URL+"/compile", []byte(`{"sources":[]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sources = %d (%s), want 400", resp.StatusCode, data)
	}

	// Options out of range.
	resp, data = postJSON(t, ts.URL+"/compile", []byte(`{"sources":["module m; func main() int { return 0; }"],"options":{"budget":-5}}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad budget = %d (%s), want 400", resp.StatusCode, data)
	}

	// Source that does not compile.
	resp, data = postJSON(t, ts.URL+"/compile", mustMarshal(CompileRequest{Sources: []string{"module m; func main() int { return undefined_symbol; }"}}))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("compile error = %d (%s), want 422", resp.StatusCode, data)
	}

	// Oversized body.
	big := mustMarshal(CompileRequest{Sources: []string{strings.Repeat("/ pad\n", 400)}})
	resp, data = postJSON(t, ts.URL+"/compile", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d (%s), want 413", resp.StatusCode, data)
	}
}

// TestMetricsAndDrain exercises /healthz, /queue, /metrics, and the
// drain flip.
func TestMetricsAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// A successful compile populates the counters.
	resp, data := postJSON(t, ts.URL+"/compile", mustMarshal(CompileRequest{
		Sources: []string{slowSource},
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile = %d: %s", resp.StatusCode, data)
	}

	resp, data = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(data) != "ok\n" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, data)
	}

	resp, data = get(t, ts.URL+"/queue")
	var q QueueState
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("/queue JSON: %v (%s)", err, data)
	}
	if q.Workers != 1 || q.AdmittedTotal != 1 || q.CompletedTotal != 1 {
		t.Errorf("queue state %+v", q)
	}

	_, data = get(t, ts.URL+"/metrics")
	text := string(data)
	for _, want := range []string{
		"hlod_up 1",
		"hlod_workers 1",
		`hlod_requests_total{endpoint="compile",code="200"} 1`,
		"hlod_admitted_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	// Draining: healthz flips to 503, new work is refused, metrics says
	// hlod_up 0.
	s.StartDrain()
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/compile", mustMarshal(CompileRequest{Sources: []string{slowSource}}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /compile = %d, want 503", resp.StatusCode)
	}
	_, data = get(t, ts.URL+"/metrics")
	if !strings.Contains(string(data), "hlod_up 0") {
		t.Errorf("draining /metrics missing hlod_up 0:\n%s", data)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}
