package serve

import (
	"context"
	"sync"
)

// flightResult is the fully rendered outcome of one executed request:
// exactly the bytes and headers a follower can replay. canceled marks
// an execution that died of its own client's disconnect — such a
// result is private to the leader and never shared.
type flightResult struct {
	status      int
	contentType string
	retryAfter  int // seconds; nonzero only on 429
	body        []byte
	canceled    bool
	// queueNS/serviceNS split the executing request's latency into
	// admission wait and actual work, surfaced as the X-Hlod-Queue-Ms /
	// X-Hlod-Service-Ms response headers. timed marks results that went
	// through admission (errors rendered before admission carry no
	// split). Followers replay the leader's split: the work they waited
	// on is the work these numbers describe.
	queueNS   int64
	serviceNS int64
	timed     bool
	// cached marks a response replayed from the farm's persistent
	// store (X-Hlod-Cache: hit): it consumed no worker slot, so it
	// carries no queue/service split.
	cached bool
}

// flightGroup coalesces concurrent identical requests ("single
// flight"): the first caller with a key executes; callers arriving
// while that execution is in flight wait for it and share the
// byte-identical response, consuming no queue slot. Flights exist only
// while a request is in the air — completed results are not cached
// here (cross-request memoization lives in driver.Cache, which the
// executed compile hits anyway).
//
// A leader whose own client disconnects does not doom its followers:
// the canceled result is dropped and one waiting follower retries as
// the new leader under its own context.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	hits    int64 // followers served from a shared result
}

type flight struct {
	done chan struct{}
	res  *flightResult
}

// do returns fn's result for key, sharing one execution among
// concurrent identical requests. shared reports whether the result
// came from another caller's flight. A ctx error is returned only for
// this caller's own context.
func (g *flightGroup) do(ctx context.Context, key string, fn func() *flightResult) (res *flightResult, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.flights == nil {
			g.flights = make(map[string]*flight)
		}
		f, ok := g.flights[key]
		if !ok {
			f = &flight{done: make(chan struct{})}
			g.flights[key] = f
			g.mu.Unlock()
			f.res = fn()
			g.mu.Lock()
			delete(g.flights, key)
			g.mu.Unlock()
			close(f.done)
			return f.res, false, nil
		}
		g.mu.Unlock()
		select {
		case <-f.done:
			if f.res.canceled {
				continue // the leader's client vanished; take over
			}
			g.mu.Lock()
			g.hits++
			g.mu.Unlock()
			return f.res, true, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// dedupHits reports how many requests were served from a shared flight.
func (g *flightGroup) dedupHits() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits
}
