// Package source provides positions and diagnostics shared by the front
// end and the rest of the toolchain.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos identifies a location in a source file. The zero Pos is "no
// position".
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// IsValid reports whether p carries a real location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Error is a single diagnostic tied to a position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return e.Pos.String() + ": " + e.Msg
	}
	return e.Msg
}

// ErrorList accumulates diagnostics. The zero value is ready to use.
type ErrorList struct {
	errs []*Error
}

// Add appends a formatted diagnostic at pos.
func (l *ErrorList) Add(pos Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Len reports the number of diagnostics collected.
func (l *ErrorList) Len() int { return len(l.errs) }

// Errors returns the collected diagnostics in source order.
func (l *ErrorList) Errors() []*Error {
	sorted := make([]*Error, len(l.errs))
	copy(sorted, l.errs)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i].Pos, sorted[j].Pos
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return sorted
}

// Err returns nil if the list is empty, and an error summarizing every
// diagnostic otherwise.
func (l *ErrorList) Err() error {
	if len(l.errs) == 0 {
		return nil
	}
	return l
}

// Error implements the error interface, joining all diagnostics.
func (l *ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l.Errors() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}
