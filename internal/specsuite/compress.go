package specsuite

// 026.compress / 129.compress — an LZW-style coder over a synthetic byte
// stream. The hot path calls tiny byte-I/O accessors (getbyte/putbits)
// and a hash probe on every symbol, the structure that made the original
// compress a strong inlining client.
func compressSources() []string {
	return []string{compressIOMod, compressHashMod, compressMainMod}
}

const compressIOMod = `
module czio;

// In-memory input and output streams.
static var inbuf [8192] int;
static var outbuf [16384] int;
static var inlen int;
static var inpos int;
static var outpos int;

func io_reset(n int) int {
	inlen = n;
	inpos = 0;
	outpos = 0;
	return 0;
}

func io_fill(i int, b int) int {
	inbuf[i & 8191] = b & 255;
	return 0;
}

func getbyte() int {
	var b int;
	if (inpos >= inlen) { return 0 - 1; }
	b = inbuf[inpos];
	inpos = inpos + 1;
	return b;
}

func putcode(c int) int {
	outbuf[outpos & 16383] = c;
	outpos = outpos + 1;
	return c;
}

func outcount() int { return outpos; }

func outat(i int) int { return outbuf[i & 16383]; }
`

const compressHashMod = `
module czhash;

// Open-addressed code table: key = (prefix<<9) | byte.
static var keys [4096] int;
static var vals [4096] int;
static var used int;

func tbl_reset() int {
	var i int;
	for (i = 0; i < 4096; i = i + 1) { keys[i] = 0 - 1; }
	used = 0;
	return 0;
}

func hash1(prefix int, b int) int {
	return ((prefix * 31 + b) * 2654435761) & 4095;
}

// probe returns the code for (prefix,b) or -1.
func probe(prefix int, b int) int {
	var h int;
	var k int;
	var key int;
	key = (prefix << 9) | b;
	h = hash1(prefix, b);
	for (k = 0; k < 4096; k = k + 1) {
		if (keys[h] == 0 - 1) { return 0 - 1; }
		if (keys[h] == key) { return vals[h]; }
		h = (h + 1) & 4095;
	}
	return 0 - 1;
}

func insert(prefix int, b int, code int) int {
	var h int;
	var key int;
	if (used >= 3500) { return 0 - 1; }
	key = (prefix << 9) | b;
	h = hash1(prefix, b);
	while (keys[h] != 0 - 1) {
		h = (h + 1) & 4095;
	}
	keys[h] = key;
	vals[h] = code;
	used = used + 1;
	return code;
}

func tblused() int { return used; }
`

const compressMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func io_reset(n int) int;
extern func io_fill(i int, b int) int;
extern func getbyte() int;
extern func putcode(c int) int;
extern func outcount() int;
extern func outat(i int) int;
extern func tbl_reset() int;
extern func probe(prefix int, b int) int;
extern func insert(prefix int, b int, code int) int;
extern func tblused() int;

static var seed int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 7) % m;
}

// gensrc writes a compressible byte stream: runs and repeated motifs.
static func gensrc(n int) int {
	var i int;
	var b int;
	var run int;
	i = 0;
	b = rnd(64);
	run = 0;
	while (i < n) {
		if (run == 0) {
			if (rnd(4) == 0) { b = rnd(64); }
			run = 1 + rnd(9);
		}
		io_fill(i, b + (i & 3));
		run = run - 1;
		i = i + 1;
	}
	return n;
}

// lzw performs one compression pass and returns a checksum of the codes.
static func lzw(n int) int {
	var prefix int;
	var b int;
	var code int;
	var next int;
	var sum int;
	io_reset(n);
	tbl_reset();
	next = 256;
	prefix = getbyte();
	if (prefix < 0) { return 0; }
	b = getbyte();
	while (b >= 0) {
		code = probe(prefix, b);
		if (code >= 0) {
			prefix = code;
		} else {
			putcode(prefix);
			insert(prefix, b, next);
			next = next + 1;
			prefix = b;
		}
		b = getbyte();
	}
	putcode(prefix);
	sum = 0;
	for (b = 0; b < outcount(); b = b + 1) {
		sum = (sum * 33 + outat(b)) & 0xffffff;
	}
	return sum;
}

func main() int {
	var n int;
	var sum int;
	var pass int;
	n = input(0);
	seed = input(1) + 3;
	if (n > 8000) { n = 8000; }
	sum = 0;
	for (pass = 0; pass < 3; pass = pass + 1) {
		gensrc(n);
		sum = (sum + lzw(n)) & 0xffffff;
		sum = (sum + tblused()) & 0xffffff;
	}
	print(sum);
	print(outcount());
	return 0;
}
`
