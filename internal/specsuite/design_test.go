package specsuite_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/specsuite"
	"repro/internal/testutil"
)

// optimizeBench runs the peak configuration (whole-program + profile) on
// a benchmark and returns the transformed program and stats.
func optimizeBench(t *testing.T, name string) (*ir.Program, *core.Stats) {
	t.Helper()
	b, err := specsuite.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	trainP := testutil.MustBuild(t, b.Sources...)
	res, err := interp.Run(trainP, interp.Options{Inputs: b.Train, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := testutil.MustBuild(t, b.Sources...)
	res.Profile.Attach(p)
	stats := core.Run(p, core.WholeProgram(), core.DefaultOptions())
	return p, stats
}

// countOps tallies instruction kinds across the program.
func countOps(p *ir.Program) map[ir.Op]int {
	counts := map[ir.Op]int{}
	p.Funcs(func(f *ir.Func) bool {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				counts[b.Instrs[i].Op]++
			}
		}
		return true
	})
	return counts
}

// TestLiAccessorsInlined: the li design story is that the hot
// cross-module cell accessors (car/cdr/tagof) largely vanish into their
// callers. Under the default budget not every site fits (that is the
// budget doing its job), so the assertion is a substantial reduction,
// not elimination.
func TestLiAccessorsInlined(t *testing.T) {
	b, err := specsuite.ByName("022.li")
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic accessor entries, measured by instrumenting a run: the
	// static site count is misleading because clones duplicate sites.
	dynamicEntries := func(p *ir.Program) int64 {
		res, err := interp.Run(p, interp.Options{Inputs: b.Train, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		for name, counts := range res.Profile.Blocks {
			if len(counts) == 0 {
				continue
			}
			if strings.Contains(name, ":car") || strings.Contains(name, ":cdr") || strings.Contains(name, ":tagof") {
				n += counts[0]
			}
		}
		return n
	}
	before := dynamicEntries(testutil.MustBuild(t, b.Sources...))
	if before == 0 {
		t.Fatal("accessors never executed in training; benchmark design broken")
	}
	p, stats := optimizeBench(t, "022.li")
	if stats.Inlines == 0 {
		t.Fatalf("no inlining: %+v", stats)
	}
	after := dynamicEntries(p)
	if after*2 > before {
		t.Errorf("dynamic accessor entries only fell from %d to %d; want at least a 2x reduction", before, after)
	}
}

// TestM88ksimAluCloned: the m88ksim story is clone groups per opcode of
// the shared alu helper.
func TestM88ksimAluCloned(t *testing.T) {
	p, stats := optimizeBench(t, "124.m88ksim")
	if stats.Clones == 0 {
		t.Fatalf("no clones: %+v", stats)
	}
	aluClones := 0
	p.Funcs(func(f *ir.Func) bool {
		if strings.Contains(f.ClonedFrom, ":alu") {
			aluClones++
		}
		return true
	})
	// alu may ALSO have been fully inlined away (even better); accept
	// either clones of alu or no remaining calls to it.
	if aluClones == 0 {
		aluCalls := 0
		p.Funcs(func(f *ir.Func) bool {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.Call && strings.HasSuffix(b.Instrs[i].Callee, ":alu") {
						aluCalls++
					}
				}
			}
			return true
		})
		if aluCalls > 0 {
			t.Errorf("alu neither cloned nor fully inlined: %d calls remain", aluCalls)
		}
	}
}

// TestScCursesDeleted: the 072.sc story is interprocedural dead-call
// deletion of the do-nothing curses library, followed by routine
// deletion.
func TestScCursesDeleted(t *testing.T) {
	p, stats := optimizeBench(t, "072.sc")
	if stats.DeadCalls == 0 {
		t.Errorf("no dead pure calls deleted: %+v", stats)
	}
	p.Funcs(func(f *ir.Func) bool {
		if f.Module == "curses" {
			t.Errorf("curses routine %s survived whole-program optimization", f.QName)
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.Call && strings.HasPrefix(in.Callee, "curses:") {
					t.Errorf("curses call survived in %s", f.QName)
				}
			}
		}
		return true
	})
}

// TestEqntottIndirectEliminated: the staged-optimization story — the
// comparator function pointer becomes direct calls, then inlines.
func TestEqntottIndirectEliminated(t *testing.T) {
	p, stats := optimizeBench(t, "023.eqntott")
	if stats.Clones == 0 {
		t.Fatalf("sorter not cloned for its comparator: %+v", stats)
	}
	ops := countOps(p)
	if ops[ir.ICall] != 0 {
		t.Errorf("%d indirect calls survived the staged optimization", ops[ir.ICall])
	}
}

// TestVortexAccessorLayersCollapse: the vortex story — two layers of
// field accessors collapse so hot transaction code touches the arena
// directly.
func TestVortexAccessorLayersCollapse(t *testing.T) {
	p, stats := optimizeBench(t, "147.vortex")
	if stats.Inlines == 0 {
		t.Fatalf("no inlining: %+v", stats)
	}
	hotAccessorCalls := 0
	p.Funcs(func(f *ir.Func) bool {
		for _, b := range f.Blocks {
			if b.Count < f.EntryCount {
				continue
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.Call && strings.Contains(in.Callee, ":fld_") {
					hotAccessorCalls++
				}
			}
		}
		return true
	})
	if hotAccessorCalls > 6 {
		t.Errorf("%d hot fld_get/fld_set calls survived; accessor layers did not collapse", hotAccessorCalls)
	}
}

// TestBenchmarksAreDeterministic: two interpreter runs on the same input
// produce identical output (no hidden nondeterminism in the MiniC code).
func TestBenchmarksAreDeterministic(t *testing.T) {
	for _, b := range specsuite.All() {
		p1 := testutil.MustBuild(t, b.Sources...)
		p2 := testutil.MustBuild(t, b.Sources...)
		r1 := testutil.MustRun(t, p1, b.Train...)
		r2 := testutil.MustRun(t, p2, b.Train...)
		if len(r1.Output) != len(r2.Output) {
			t.Fatalf("%s: nondeterministic output size", b.Name)
		}
		for i := range r1.Output {
			if r1.Output[i] != r2.Output[i] {
				t.Fatalf("%s: nondeterministic output", b.Name)
			}
		}
	}
}

// TestTrainAndRefDiffer: ref inputs must exercise more work than train
// (the PBO setup would be vacuous otherwise).
func TestTrainAndRefDiffer(t *testing.T) {
	for _, b := range specsuite.All() {
		p := testutil.MustBuild(t, b.Sources...)
		train := testutil.MustRun(t, p, b.Train...)
		p2 := testutil.MustBuild(t, b.Sources...)
		ref := testutil.MustRun(t, p2, b.Ref...)
		if ref.Steps <= train.Steps {
			t.Errorf("%s: ref run (%d steps) not larger than train (%d)", b.Name, ref.Steps, train.Steps)
		}
	}
}
