package specsuite

// 023.eqntott — truth-table generation and sorting. The famous hot spot
// of eqntott is a qsort comparator reached through a function pointer;
// here the sorter takes a comparator as a function value, so making the
// benchmark fast requires the paper's staged optimization: clone the
// sorter for the constant code pointer, let constant propagation turn
// the indirect call direct, then inline the comparator in a later pass.
func eqntottSources() []string {
	return []string{eqntottSortMod, eqntottMainMod}
}

const eqntottSortMod = `
module qsort;

// Insertion/shell sort over an index-permutation of rows, comparing
// through a caller-supplied comparator cmp(i, j).
func sortperm(perm int, n int, cmp int) int {
	var gap int;
	var i int;
	var j int;
	var t int;
	var swaps int;
	swaps = 0;
	gap = n / 2;
	while (gap > 0) {
		for (i = gap; i < n; i = i + 1) {
			j = i;
			while (j >= gap) {
				if (cmp(perm[j - gap], perm[j]) <= 0) { break; }
				t = perm[j];
				perm[j] = perm[j - gap];
				perm[j - gap] = t;
				swaps = swaps + 1;
				j = j - gap;
			}
		}
		gap = gap / 2;
	}
	return swaps;
}

// binsearch through the sorted permutation, also via the comparator.
func findrow(perm int, n int, cmp int, probe int) int {
	var lo int;
	var hi int;
	var mid int;
	var c int;
	lo = 0;
	hi = n - 1;
	while (lo <= hi) {
		mid = (lo + hi) / 2;
		c = cmp(perm[mid], probe);
		if (c == 0) { return mid; }
		if (c < 0) { lo = mid + 1; } else { hi = mid - 1; }
	}
	return 0 - 1;
}
`

const eqntottMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func sortperm(perm int, n int, cmp int) int;
extern func findrow(perm int, n int, cmp int, probe int) int;

// Truth-table rows: WIDTH words per row.
static var rows [4096] int;
static var perm [512] int;
static var nrows int;
static var seed int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 6) % m;
}

static func rowword(r int, w int) int { return rows[(r * 8 + w) & 4095]; }

// cmprows orders rows lexicographically by their 8 words.
func cmprows(a int, b int) int {
	var w int;
	var x int;
	var y int;
	for (w = 0; w < 8; w = w + 1) {
		x = rowword(a, w);
		y = rowword(b, w);
		if (x < y) { return 0 - 1; }
		if (x > y) { return 1; }
	}
	return 0;
}

// cmpones orders rows by popcount of their first word (a second
// comparator so the sorter has two distinct specializations).
func cmpones(a int, b int) int {
	var x int;
	var y int;
	var ca int;
	var cb int;
	x = rowword(a, 0);
	y = rowword(b, 0);
	ca = 0;
	cb = 0;
	while (x != 0) { ca = ca + (x & 1); x = (x >> 1) & 0xffffffff; }
	while (y != 0) { cb = cb + (y & 1); y = (y >> 1) & 0xffffffff; }
	if (ca != cb) { return ca - cb; }
	return a - b;
}

static func genrows(n int) int {
	var r int;
	var w int;
	for (r = 0; r < n; r = r + 1) {
		for (w = 0; w < 8; w = w + 1) {
			// Few distinct values => duplicate rows to merge.
			rows[(r * 8 + w) & 4095] = rnd(5);
		}
		perm[r & 511] = r;
	}
	return n;
}

// countuniq walks the sorted permutation counting distinct rows.
static func countuniq(n int) int {
	var i int;
	var u int;
	u = 1;
	for (i = 1; i < n; i = i + 1) {
		if (cmprows(perm[i - 1], perm[i]) != 0) { u = u + 1; }
	}
	return u;
}

func main() int {
	var n int;
	var sum int;
	var i int;
	n = input(0);
	seed = input(1) + 1;
	if (n > 500) { n = 500; }
	genrows(n);
	sum = sortperm(&perm, n, &cmprows);
	sum = sum + countuniq(n);
	// Re-permute and sort under the second comparator.
	for (i = 0; i < n; i = i + 1) { perm[i] = n - 1 - i; }
	sum = sum + sortperm(&perm, n, &cmpones);
	for (i = 0; i < n; i = i + 4) {
		sum = sum + findrow(&perm, n, &cmpones, perm[i]);
	}
	print(sum & 0xffffff);
	print(n);
	return 0;
}
`
