package specsuite

// 008.espresso — two-level logic minimization flavored workload: cubes
// are bit-vectors (two bits per literal), and the cover-reduction loops
// call tiny set operations (intersect, distance, containment) on every
// cube pair — exactly the leaf-call-in-nested-loop structure espresso
// stressed.
func espressoSources() []string {
	return []string{espressoSetMod, espressoMainMod}
}

const espressoSetMod = `
module cube;

// A cube is W consecutive words in the arena; each pair of bits encodes
// a literal (01 = positive, 10 = negative, 11 = don't care).
static var arena [16384] int;
static var W int;

func cube_init(words int) int { W = words; return W; }

func cube_at(c int, w int) int { return arena[(c * W + w) & 16383]; }

func cube_set(c int, w int, v int) int {
	arena[(c * W + w) & 16383] = v;
	return v;
}

// popcount of one word, the innermost leaf of the whole benchmark.
func bits(x int) int {
	var n int;
	n = 0;
	while (x != 0) {
		n = n + (x & 1);
		x = (x >> 1) & 0x7fffffffffffffff;
	}
	return n;
}

// cdist counts conflicting literals between two cubes (words where the
// intersection of some literal is empty).
func cdist(a int, b int) int {
	var w int;
	var d int;
	var x int;
	d = 0;
	for (w = 0; w < W; w = w + 1) {
		x = cube_at(a, w) & cube_at(b, w);
		// A literal conflicts when both bits vanish: detect pairs 00.
		x = (~x) & ((~x) >> 1) & 0x5555555555555555;
		d = d + bits(x);
	}
	return d;
}

// contains reports whether cube a covers cube b.
func contains(a int, b int) int {
	var w int;
	for (w = 0; w < W; w = w + 1) {
		if ((cube_at(a, w) | cube_at(b, w)) != cube_at(a, w)) { return 0; }
	}
	return 1;
}

// consensus writes the merge of a and b into dst and returns the number
// of don't-care literals created.
func consensus(dst int, a int, b int) int {
	var w int;
	var x int;
	var dc int;
	dc = 0;
	for (w = 0; w < W; w = w + 1) {
		x = cube_at(a, w) | cube_at(b, w);
		cube_set(dst, w, x);
		dc = dc + bits(x & (x >> 1) & 0x5555555555555555);
	}
	return dc;
}

func cube_weight(c int) int {
	var w int;
	var s int;
	s = 0;
	for (w = 0; w < W; w = w + 1) { s = s + bits(cube_at(c, w)); }
	return s;
}
`

const espressoMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func cube_init(words int) int;
extern func cube_at(c int, w int) int;
extern func cube_set(c int, w int, v int) int;
extern func cdist(a int, b int) int;
extern func contains(a int, b int) int;
extern func consensus(dst int, a int, b int) int;
extern func cube_weight(c int) int;

static var seed int;
static var ncubes int;
static var alive [256] int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 9) % m;
}

static func gencube(c int, w int) int {
	var i int;
	for (i = 0; i < w; i = i + 1) {
		// Random literal pattern; bias toward don't-care.
		cube_set(c, i, rnd(0x10000000) | 0x1249249249249249);
	}
	return c;
}

// reduce performs one covering sweep: delete cubes contained in others,
// merge near cubes (distance <= 1) into consensus cubes.
static func reduce(w int) int {
	var i int;
	var j int;
	var removed int;
	removed = 0;
	for (i = 0; i < ncubes; i = i + 1) {
		if (!alive[i]) { continue; }
		for (j = 0; j < ncubes; j = j + 1) {
			if (i == j || !alive[j]) { continue; }
			if (contains(i, j)) {
				alive[j] = 0;
				removed = removed + 1;
			} else {
				if (cdist(i, j) <= 1) {
					consensus(i, i, j);
				}
			}
		}
	}
	return removed;
}

func main() int {
	var scale int;
	var w int;
	var i int;
	var pass int;
	var sum int;
	scale = input(0);
	seed = input(1) + 13;
	w = 4;
	cube_init(w);
	ncubes = 16 + scale * 4;
	if (ncubes > 250) { ncubes = 250; }
	for (i = 0; i < ncubes; i = i + 1) {
		gencube(i, w);
		alive[i] = 1;
	}
	sum = 0;
	for (pass = 0; pass < 3; pass = pass + 1) {
		sum = sum + reduce(w);
	}
	for (i = 0; i < ncubes; i = i + 1) {
		if (alive[i]) { sum = (sum + cube_weight(i)) & 0xffffff; }
	}
	print(sum);
	print(ncubes);
	return 0;
}
`
