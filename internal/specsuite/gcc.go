package specsuite

// 085.gcc / 126.gcc — a miniature compiler pipeline: a tokenizer over a
// synthetic expression stream, a recursive-descent parser emitting stack
// code, a peephole pass, and a stack VM executing the result. gcc was
// the paper's biggest program; this stand-in is the suite's biggest
// program, with many layered helpers whose boundaries block optimization
// until HLO inlines through them.
func gccSources() []string {
	return []string{gccLexMod, gccEmitMod, gccVMMod, gccSymMod, gccMainMod}
}

const gccLexMod = `
module glex;

// Token stream synthesized from a PRNG: a well-formed expression
// grammar is produced directly in token form.
// Tokens: 0 EOF, 1 NUM (value in tokval), 2 '+', 3 '-', 4 '*',
// 5 '(', 6 ')', 7 VAR (index in tokval).
static var toks [8192] int;
static var tvals [8192] int;
static var ntoks int;
static var pos int;

static var seed int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 5) % m;
}

static func emit_tok(t int, v int) int {
	if (ntoks >= 8190) { return 0; }
	toks[ntoks] = t;
	tvals[ntoks] = v;
	ntoks = ntoks + 1;
	return 1;
}

// genexpr emits a random expression in token form.
static func genexpr(d int) int {
	var k int;
	if (d <= 0) {
		if (rnd(3) == 0) { return emit_tok(7, rnd(8)); }
		return emit_tok(1, rnd(1000));
	}
	k = rnd(5);
	if (k == 0) { return emit_tok(1, rnd(1000)); }
	if (k == 1) {
		emit_tok(5, 0);
		genexpr(d - 1);
		emit_tok(6, 0);
		return 1;
	}
	genexpr(d - 1);
	if (k == 2) { emit_tok(2, 0); }
	if (k == 3) { emit_tok(3, 0); }
	if (k == 4) { emit_tok(4, 0); }
	genexpr(d - 1);
	return 1;
}

func lex_reset(s int) int {
	seed = s;
	ntoks = 0;
	pos = 0;
	return 0;
}

func lex_gen(d int) int {
	genexpr(d);
	emit_tok(0, 0);
	return ntoks;
}

func peek() int { return toks[pos & 8191]; }
func peekval() int { return tvals[pos & 8191]; }
func advance() int {
	var t int;
	t = toks[pos & 8191];
	if (t != 0) { pos = pos + 1; }
	return t;
}
func lexpos() int { return pos; }
`

const gccEmitMod = `
module gemit;

// Stack-code buffer: opcodes
// 1 PUSH imm, 2 ADD, 3 SUB, 4 MUL, 5 LOADVAR idx.
static var code [16384] int;
static var carg [16384] int;
static var ncode int;

func emit_reset() int { ncode = 0; return 0; }

func emit(op int, a int) int {
	if (ncode >= 16380) { return 0; }
	code[ncode] = op;
	carg[ncode] = a;
	ncode = ncode + 1;
	return ncode;
}

func code_len() int { return ncode; }
func code_op(i int) int { return code[i & 16383]; }
func code_arg(i int) int { return carg[i & 16383]; }
func code_patch(i int, op int, a int) int {
	code[i & 16383] = op;
	carg[i & 16383] = a;
	return i;
}

// peephole folds PUSH a; PUSH b; ALUOP into PUSH (a op b), the classic
// constant-folding window. Returns the number of folds.
func peephole() int {
	var i int;
	var o int;
	var folds int;
	var a int;
	var b int;
	var r int;
	folds = 0;
	i = 0;
	while (i + 2 < ncode) {
		o = code[i + 2];
		if (code[i] == 1 && code[i + 1] == 1 && (o == 2 || o == 3 || o == 4)) {
			a = carg[i];
			b = carg[i + 1];
			if (o == 2) { r = a + b; }
			if (o == 3) { r = a - b; }
			if (o == 4) { r = a * b; }
			code_patch(i, 1, r);
			// Shift the tail left by two.
			var j int;
			for (j = i + 1; j + 2 < ncode; j = j + 1) {
				code[j] = code[j + 2];
				carg[j] = carg[j + 2];
			}
			ncode = ncode - 2;
			folds = folds + 1;
			if (i > 1) { i = i - 2; }
		} else {
			i = i + 1;
		}
	}
	return folds;
}
`

const gccVMMod = `
module gvm;
extern func code_len() int;
extern func code_op(i int) int;
extern func code_arg(i int) int;

static var stack [256] int;
static var vars [8] int;

func vm_setvar(i int, v int) int { vars[i & 7] = v; return v; }

// vm_run interprets the stack code and returns the top of stack.
func vm_run() int {
	var pc int;
	var sp int;
	var op int;
	var n int;
	sp = 0;
	n = code_len();
	for (pc = 0; pc < n; pc = pc + 1) {
		op = code_op(pc);
		if (op == 1) {
			stack[sp & 255] = code_arg(pc);
			sp = sp + 1;
		}
		if (op == 5) {
			stack[sp & 255] = vars[code_arg(pc) & 7];
			sp = sp + 1;
		}
		if (op == 2 || op == 3 || op == 4) {
			if (sp >= 2) {
				var x int;
				var y int;
				y = stack[(sp - 1) & 255];
				x = stack[(sp - 2) & 255];
				if (op == 2) { stack[(sp - 2) & 255] = x + y; }
				if (op == 3) { stack[(sp - 2) & 255] = x - y; }
				if (op == 4) { stack[(sp - 2) & 255] = (x * y) % 65521; }
				sp = sp - 1;
			}
		}
	}
	if (sp == 0) { return 0; }
	return stack[(sp - 1) & 255];
}
`

// gccSymMod adds the symbol-table-ish phases every compiler has: a
// constant-interning pool and a stack-balance verifier over the emitted
// code.
const gccSymMod = `
module gsym;
extern func code_len() int;
extern func code_op(i int) int;
extern func code_arg(i int) int;

// Constant pool: distinct PUSH immediates, open-addressed.
static var pool [1024] int;
static var used [1024] int;
static var npool int;

func pool_reset() int {
	var i int;
	for (i = 0; i < 1024; i = i + 1) { used[i] = 0; }
	npool = 0;
	return 0;
}

func intern(v int) int {
	var h int;
	var k int;
	h = (v * 2654435761) & 1023;
	for (k = 0; k < 1024; k = k + 1) {
		if (!used[h]) {
			used[h] = 1;
			pool[h] = v;
			npool = npool + 1;
			return h;
		}
		if (pool[h] == v) { return h; }
		h = (h + 1) & 1023;
	}
	return 0 - 1;
}

func pool_size() int { return npool; }

// intern_consts walks the code interning every PUSH immediate; returns a
// checksum of slot indexes.
func intern_consts() int {
	var i int;
	var s int;
	var n int;
	n = code_len();
	pool_reset();
	for (i = 0; i < n; i = i + 1) {
		if (code_op(i) == 1) {
			s = (s * 5 + intern(code_arg(i))) & 0xffffff;
		}
	}
	return s;
}

// verify_balance simulates stack depth symbolically: PUSH/LOADVAR +1,
// ALU -1; returns the final depth (1 for a well-formed expression) or
// a negative error code.
func verify_balance() int {
	var i int;
	var d int;
	var op int;
	var n int;
	n = code_len();
	d = 0;
	for (i = 0; i < n; i = i + 1) {
		op = code_op(i);
		if (op == 1 || op == 5) { d = d + 1; }
		if (op == 2 || op == 3 || op == 4) {
			if (d < 2) { return 0 - i - 1; }
			d = d - 1;
		}
	}
	return d;
}
`

const gccMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func lex_reset(s int) int;
extern func lex_gen(d int) int;
extern func peek() int;
extern func peekval() int;
extern func advance() int;
extern func emit_reset() int;
extern func emit(op int, a int) int;
extern func code_len() int;
extern func peephole() int;
extern func vm_run() int;
extern func vm_setvar(i int, v int) int;
extern func intern_consts() int;
extern func pool_size() int;
extern func verify_balance() int;

// Recursive-descent parser over the token stream, compiling to stack
// code: expr := term (('+'|'-') term)*, term := factor ('*' factor)*,
// factor := NUM | VAR | '(' expr ')'.
static func factor() int {
	var t int;
	t = peek();
	if (t == 1) {
		emit(1, peekval());
		advance();
		return 1;
	}
	if (t == 7) {
		emit(5, peekval());
		advance();
		return 1;
	}
	if (t == 5) {
		advance();
		expr();
		if (peek() == 6) { advance(); }
		return 1;
	}
	// Parse error: synthesize a zero.
	emit(1, 0);
	if (t != 0) { advance(); }
	return 0;
}

static func term() int {
	var ok int;
	ok = factor();
	while (peek() == 4) {
		advance();
		factor();
		emit(4, 0);
	}
	return ok;
}

static func expr() int {
	var t int;
	var ok int;
	ok = term();
	t = peek();
	while (t == 2 || t == 3) {
		advance();
		term();
		if (t == 2) { emit(2, 0); }
		if (t == 3) { emit(3, 0); }
		t = peek();
	}
	return ok;
}

func main() int {
	var scale int;
	var sum int;
	var i int;
	var folds int;
	var v int;
	scale = input(0);
	sum = 0;
	folds = 0;
	for (i = 0; i < scale; i = i + 1) {
		lex_reset(input(1) + i * 97 + 11);
		lex_gen(3 + (i % 4));
		emit_reset();
		expr();
		folds = folds + peephole();
		sum = (sum + intern_consts() + pool_size()) & 0xffffff;
		if (verify_balance() != 1) { sum = sum + 999999; }
		vm_setvar(0, i);
		vm_setvar(1, sum & 1023);
		for (v = 2; v < 8; v = v + 1) { vm_setvar(v, v * 17 + i); }
		sum = (sum + vm_run()) & 0xffffff;
		sum = (sum + code_len()) & 0xffffff;
	}
	print(sum);
	print(folds);
	return 0;
}
`
