package specsuite

// 099.go — a Go-board position evaluator: random stones are placed, then
// groups are flood-filled and liberties counted through tiny neighbor
// helpers. The evaluator's inner loops call onboard/stoneat/libcount
// constantly; the original "go" program had the same
// many-small-board-helpers profile.
func goSources() []string {
	return []string{goBoardMod, goEvalMod, goMainMod}
}

const goBoardMod = `
module board;

// 13x13 board in a 1-D array; 0 empty, 1 black, 2 white.
static var cells [169] int;
static var marks [169] int;
static var markGen int;

func bsize() int { return 13; }

func onboard(r int, c int) int {
	return r >= 0 && r < 13 && c >= 0 && c < 13;
}

func at(r int, c int) int { return cells[r * 13 + c]; }

func put(r int, c int, v int) int {
	cells[r * 13 + c] = v;
	return v;
}

func clearboard() int {
	var i int;
	for (i = 0; i < 169; i = i + 1) { cells[i] = 0; marks[i] = 0; }
	markGen = 0;
	return 0;
}

func newmark() int { markGen = markGen + 1; return markGen; }
func marked(r int, c int) int { return marks[r * 13 + c] == markGen; }
func setmark(r int, c int) int { marks[r * 13 + c] = markGen; return 1; }
`

const goEvalMod = `
module eval;
extern func onboard(r int, c int) int;
extern func at(r int, c int) int;
extern func newmark() int;
extern func marked(r int, c int) int;
extern func setmark(r int, c int) int;

// Explicit flood-fill stack.
static var stackR [256] int;
static var stackC [256] int;

// libs counts the liberties of the group containing (r,c) and, via
// groupsize, its stone count.
static var lastGroupSize int;

func groupsize() int { return lastGroupSize; }

func libs(r0 int, c0 int) int {
	var sp int;
	var r int;
	var c int;
	var color int;
	var nlibs int;
	var d int;
	var nr int;
	var nc int;
	color = at(r0, c0);
	if (color == 0) { return 0; }
	newmark();
	nlibs = 0;
	lastGroupSize = 0;
	sp = 0;
	stackR[sp] = r0;
	stackC[sp] = c0;
	sp = sp + 1;
	setmark(r0, c0);
	while (sp > 0) {
		sp = sp - 1;
		r = stackR[sp];
		c = stackC[sp];
		lastGroupSize = lastGroupSize + 1;
		for (d = 0; d < 4; d = d + 1) {
			nr = r + (d == 0) - (d == 1);
			nc = c + (d == 2) - (d == 3);
			if (!onboard(nr, nc)) { continue; }
			if (marked(nr, nc)) { continue; }
			if (at(nr, nc) == 0) {
				setmark(nr, nc);
				nlibs = nlibs + 1;
			} else {
				if (at(nr, nc) == color && sp < 250) {
					setmark(nr, nc);
					stackR[sp] = nr;
					stackC[sp] = nc;
					sp = sp + 1;
				}
			}
		}
	}
	return nlibs;
}

// influence scores a point by summing decayed distances to stones.
func influence(r int, c int) int {
	var rr int;
	var cc int;
	var s int;
	var d int;
	var v int;
	s = 0;
	for (rr = 0; rr < 13; rr = rr + 1) {
		for (cc = 0; cc < 13; cc = cc + 1) {
			v = at(rr, cc);
			if (v == 0) { continue; }
			d = (rr > r ? rr - r : r - rr) + (cc > c ? cc - c : c - cc);
			if (d < 5) {
				if (v == 1) { s = s + (16 >> d); } else { s = s - (16 >> d); }
			}
		}
	}
	return s;
}
`

const goMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func bsize() int;
extern func at(r int, c int) int;
extern func put(r int, c int, v int) int;
extern func clearboard() int;
extern func libs(r0 int, c0 int) int;
extern func groupsize() int;
extern func influence(r int, c int) int;

static var seed int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 6) % m;
}

static func fillboard(stones int) int {
	var k int;
	var r int;
	var c int;
	clearboard();
	for (k = 0; k < stones; k = k + 1) {
		r = rnd(13);
		c = rnd(13);
		if (at(r, c) == 0) { put(r, c, 1 + (k & 1)); }
	}
	return stones;
}

// score sums liberties weighted by group size plus influence over a
// coarse grid of points.
static func score() int {
	var r int;
	var c int;
	var s int;
	for (r = 0; r < 13; r = r + 1) {
		for (c = 0; c < 13; c = c + 1) {
			if (at(r, c) != 0) {
				var l int;
				l = libs(r, c);
				if (at(r, c) == 1) {
					s = s + l * groupsize();
				} else {
					s = s - l * groupsize();
				}
			}
		}
	}
	for (r = 1; r < 13; r = r + 3) {
		for (c = 1; c < 13; c = c + 3) {
			s = s + influence(r, c);
		}
	}
	return s;
}

func main() int {
	var games int;
	var g int;
	var sum int;
	games = input(0);
	seed = input(1) + 29;
	sum = 0;
	for (g = 0; g < games; g = g + 1) {
		fillboard(40 + rnd(60));
		sum = (sum * 3 + score()) & 0xffffff;
	}
	print(sum);
	print(bsize());
	return 0;
}
`
