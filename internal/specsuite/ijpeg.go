package specsuite

// 132.ijpeg — integer image coding: 8×8 blocks flow through a separable
// integer transform, per-site constant quantization (luma vs chroma call
// sites pass different constant tables — clone groups), zigzag and
// run-length accounting. The per-pixel helpers (clampc, pixat) are
// classic inline fodder.
func ijpegSources() []string {
	return []string{ijpegDSPMod, ijpegMainMod}
}

const ijpegDSPMod = `
module jdsp;

// One working block plus the coefficient block.
static var blk [64] int;
static var coef [64] int;

func blk_set(i int, v int) int { blk[i & 63] = v; return v; }
func blk_get(i int) int { return blk[i & 63]; }
func coef_get(i int) int { return coef[i & 63]; }

func clampc(v int) int {
	if (v < 0 - 1024) { return 0 - 1024; }
	if (v > 1023) { return 1023; }
	return v;
}

// butterfly is the transform kernel; rows and columns both use it.
func butterfly(a int, b int) int { return clampc(a + b); }
func diff(a int, b int) int { return clampc(a - b); }

// fwd1d transforms 8 samples in place at stride s starting at base:
// a Haar-like integer pyramid (not the real DCT, but the same memory
// and call pattern).
func fwd1d(base int, s int) int {
	var i int;
	var t0 int;
	var t1 int;
	for (i = 0; i < 4; i = i + 1) {
		t0 = blk_get(base + i * s);
		t1 = blk_get(base + (7 - i) * s);
		blk_set(base + i * s, butterfly(t0, t1));
		blk_set(base + (7 - i) * s, diff(t0, t1));
	}
	t0 = blk_get(base);
	t1 = blk_get(base + s);
	blk_set(base, butterfly(t0, t1));
	blk_set(base + s, diff(t0, t1));
	return 0;
}

// fwd2d runs the transform over all rows then all columns.
func fwd2d() int {
	var k int;
	for (k = 0; k < 8; k = k + 1) { fwd1d(k * 8, 1); }
	for (k = 0; k < 8; k = k + 1) { fwd1d(k, 8); }
	return 0;
}

// quantize divides every coefficient by q (callers pass constant q per
// component — luma 16, chroma 24 — making clone groups).
func quantize(q int) int {
	var i int;
	var nz int;
	nz = 0;
	for (i = 0; i < 64; i = i + 1) {
		coef[i] = blk_get(i) / q;
		if (coef[i] != 0) { nz = nz + 1; }
	}
	return nz;
}

// rle counts zero runs in zigzag-ish order (row-major is close enough
// for the call pattern).
func rle() int {
	var i int;
	var run int;
	var tokens int;
	run = 0;
	tokens = 0;
	for (i = 0; i < 64; i = i + 1) {
		if (coef_get(i) == 0) {
			run = run + 1;
		} else {
			tokens = tokens + 1 + run / 16;
			run = 0;
		}
	}
	return tokens;
}
`

const ijpegMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func blk_set(i int, v int) int;
extern func coef_get(i int) int;
extern func fwd2d() int;
extern func quantize(q int) int;
extern func rle() int;

static var seed int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 7) % m;
}

// genblock synthesizes one 8x8 block with smooth gradients plus noise.
static func genblock(bx int, by int) int {
	var r int;
	var c int;
	for (r = 0; r < 8; r = r + 1) {
		for (c = 0; c < 8; c = c + 1) {
			blk_set(r * 8 + c, (bx * 3 + r) * 4 + (by * 5 + c) * 2 + rnd(32));
		}
	}
	return 0;
}

// codeblock transforms and quantizes one block; comp selects the
// constant quantizer (the two call sites below each pass a literal).
static func codeblock(q int) int {
	var nz int;
	var s int;
	var i int;
	fwd2d();
	nz = quantize(q);
	s = nz * 100 + rle();
	for (i = 0; i < 64; i = i + 8) { s = s + coef_get(i); }
	return s;
}

func main() int {
	var frames int;
	var f int;
	var bx int;
	var by int;
	var sum int;
	frames = input(0);
	seed = input(1) + 17;
	sum = 0;
	for (f = 0; f < frames; f = f + 1) {
		for (bx = 0; bx < 4; bx = bx + 1) {
			for (by = 0; by < 4; by = by + 1) {
				genblock(bx, by);
				if (((bx + by) & 1) == 0) {
					sum = (sum + codeblock(16)) & 0xffffff;  // luma
				} else {
					sum = (sum + codeblock(24)) & 0xffffff;  // chroma
				}
			}
		}
	}
	print(sum);
	print(frames * 16);
	return 0;
}
`
