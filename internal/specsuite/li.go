package specsuite

// 022.li / 130.li — a recursive Lisp-style expression evaluator.
// The original xlisp interpreter sped up 2× under HLO; the mechanisms
// were inlining of tiny cell accessors (car/cdr/tag live in another
// module here, making cross-module inlining essential) and cloning of
// the dispatch helpers that receive constant operator codes.
func liSources() []string {
	return []string{liCellMod, liEvalMod, liMainMod}
}

const liCellMod = `
module cell;

// Cells are (tag, a, b) triples in a bump-allocated arena. Pointer 0 is
// nil, so allocation starts at offset 3.
static var heap [30000] int;
static var hp int;

func creset() int { hp = 3; return 0; }

func alloc3(t int, a int, b int) int {
	var p int;
	if (hp + 3 >= 30000) { return 0; }
	p = hp;
	heap[p] = t;
	heap[p + 1] = a;
	heap[p + 2] = b;
	hp = hp + 3;
	return p;
}

func tagof(p int) int { return heap[p]; }
func car(p int) int { return heap[p + 1]; }
func cdr(p int) int { return heap[p + 2]; }
func setcar(p int, v int) int { heap[p + 1] = v; return v; }
func setcdr(p int, v int) int { heap[p + 2] = v; return v; }
func heapused() int { return hp; }
`

const liEvalMod = `
module eval;
extern func tagof(p int) int;
extern func car(p int) int;
extern func cdr(p int) int;

// Expression tags.
// 1 NUM(a=value)  2 ADD  3 SUB  4 MUL  5 LT  6 VAR(a=index)
// 7 IF(a=cond, b=PAIR(then, else))  8 PAIR  9 MOD  10 MAX

static var env [16] int;

func setvar(i int, v int) int { env[i & 15] = v; return v; }
func getvar(i int) int { return env[i & 15]; }

// apply is li's operator dispatch: every call site inside evalx passes a
// constant op code, which makes apply the canonical clone candidate.
func apply(op int, x int, y int) int {
	if (op == 2) { return x + y; }
	if (op == 3) { return x - y; }
	if (op == 4) { return x * y; }
	if (op == 5) { return x < y ? 1 : 0; }
	if (op == 9) { return y == 0 ? x : x % y; }
	if (op == 10) { return x > y ? x : y; }
	return 0;
}

func evalx(p int) int {
	var t int;
	if (p == 0) { return 0; }
	t = tagof(p);
	if (t == 1) { return car(p); }
	if (t == 6) { return getvar(car(p)); }
	if (t == 2) { return apply(2, evalx(car(p)), evalx(cdr(p))); }
	if (t == 3) { return apply(3, evalx(car(p)), evalx(cdr(p))); }
	if (t == 4) { return apply(4, evalx(car(p)), evalx(cdr(p))); }
	if (t == 5) { return apply(5, evalx(car(p)), evalx(cdr(p))); }
	if (t == 9) { return apply(9, evalx(car(p)), evalx(cdr(p))); }
	if (t == 10) { return apply(10, evalx(car(p)), evalx(cdr(p))); }
	if (t == 7) {
		var pr int;
		pr = cdr(p);
		if (evalx(car(p))) { return evalx(car(pr)); }
		return evalx(cdr(pr));
	}
	return 0;
}

// depth computes expression depth, a second recursive walker exercising
// the same accessors.
func depth(p int) int {
	var t int;
	var dl int;
	var dr int;
	if (p == 0) { return 0; }
	t = tagof(p);
	if (t == 1 || t == 6) { return 1; }
	dl = depth(car(p));
	dr = depth(cdr(p));
	return 1 + (dl > dr ? dl : dr);
}

// sumleaves adds up every literal in the tree, a third walker (li's
// garbage collector and printer walked cells the same way).
func sumleaves(p int) int {
	var t int;
	if (p == 0) { return 0; }
	t = tagof(p);
	if (t == 1) { return car(p); }
	if (t == 6) { return 0; }
	return sumleaves(car(p)) + sumleaves(cdr(p));
}
`

const liMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func creset() int;
extern func alloc3(t int, a int, b int) int;
extern func heapused() int;
extern func evalx(p int) int;
extern func depth(p int) int;
extern func sumleaves(p int) int;
extern func setvar(i int, v int) int;

static var seed int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 8) % m;
}

// gen builds a random expression tree of bounded depth.
static func gen(d int) int {
	var k int;
	if (d <= 0) {
		if (rnd(2)) { return alloc3(1, rnd(100), 0); }
		return alloc3(6, rnd(4), 0);
	}
	k = rnd(9);
	if (k == 0) { return alloc3(1, rnd(100), 0); }
	if (k == 1) { return alloc3(6, rnd(4), 0); }
	if (k == 2) { return alloc3(2, gen(d - 1), gen(d - 1)); }
	if (k == 3) { return alloc3(3, gen(d - 1), gen(d - 1)); }
	if (k == 4) { return alloc3(4, gen(d - 1), gen(d - 1)); }
	if (k == 5) { return alloc3(5, gen(d - 1), gen(d - 1)); }
	if (k == 6) { return alloc3(9, gen(d - 1), gen(d - 1)); }
	if (k == 7) { return alloc3(10, gen(d - 1), gen(d - 1)); }
	return alloc3(7, gen(d - 1), alloc3(8, gen(d - 1), gen(d - 1)));
}

func main() int {
	var iters int;
	var it int;
	var sum int;
	var e0 int;
	var e1 int;
	var e2 int;
	iters = input(0);
	seed = input(1) + 7;
	sum = 0;
	for (it = 0; it < iters; it = it + 1) {
		creset();
		e0 = gen(4);
		e1 = gen(5);
		e2 = gen(3);
		setvar(0, it);
		setvar(1, it * 3 + 1);
		setvar(2, sum & 1023);
		setvar(3, 42);
		sum = sum + evalx(e0);
		sum = sum + evalx(e1) * 2;
		sum = sum + evalx(e2);
		sum = sum + depth(e1);
		sum = sum + (sumleaves(e0) & 1023);
		sum = sum & 0xffffff;
	}
	print(sum);
	print(heapused());
	return 0;
}
`
