package specsuite

// 124.m88ksim — a CPU simulator simulating a CPU simulator: a toy RISC
// ("m88-lite") is interpreted instruction by instruction. The decode
// helpers pass constant opcode selectors into a shared ALU routine at
// every call site, giving the cloner exactly the clone groups the paper
// describes for m88ksim (where cloning was a vital contributor).
func m88ksimSources() []string {
	return []string{m88MemMod, m88CPUMod, m88MainMod}
}

const m88MemMod = `
module m88mem;

// Unified simulated memory: 4096 words of code+data. Instructions are
// packed words: op*1000000 + rd*10000 + rs*100 + rt (fields 0..99),
// with a separate immediate table.
static var mem [4096] int;
static var imm [4096] int;

func m_read(a int) int { return mem[a & 4095]; }
func m_write(a int, v int) int { mem[a & 4095] = v; return v; }
func m_imm(a int) int { return imm[a & 4095]; }
func m_setimm(a int, v int) int { imm[a & 4095] = v; return v; }
`

const m88CPUMod = `
module m88cpu;
extern func m_read(a int) int;
extern func m_write(a int, v int) int;
extern func m_imm(a int) int;

// Architectural state.
static var regs [32] int;
static var pc int;
static var steps int;

func cpu_reset(entry int) int {
	var i int;
	for (i = 0; i < 32; i = i + 1) { regs[i] = 0; }
	pc = entry;
	steps = 0;
	return 0;
}

func cpu_reg(i int) int { return regs[i & 31]; }
func cpu_setreg(i int, v int) int {
	if ((i & 31) != 0) { regs[i & 31] = v; }
	return v;
}
func cpu_pc() int { return pc; }
func cpu_steps() int { return steps; }

// alu is the shared execution helper. Every call site in step() passes
// a constant op selector — the cloner builds one clone group per
// opcode, exactly the paper's m88ksim story.
func alu(op int, a int, b int) int {
	if (op == 1) { return a + b; }
	if (op == 2) { return a - b; }
	if (op == 3) { return (a * b) % 1000003; }
	if (op == 4) { return a & b; }
	if (op == 5) { return a | b; }
	if (op == 6) { return a ^ b; }
	if (op == 7) { return a < b ? 1 : 0; }
	if (op == 8) { return a << (b & 15); }
	if (op == 9) { return a >> (b & 15); }
	return 0;
}

// step decodes and executes one instruction; returns 0 on halt.
// Opcodes: 0 halt, 1 add, 2 sub, 3 mul, 4 and, 5 or, 6 xor, 7 slt,
// 8 shl, 9 shr, 10 addi, 11 ld, 12 st, 13 beq, 14 bne, 15 jmp.
func step() int {
	var w int;
	var op int;
	var rd int;
	var rs int;
	var rt int;
	var iv int;
	w = m_read(pc);
	iv = m_imm(pc);
	op = w / 1000000;
	rd = (w / 10000) % 100;
	rs = (w / 100) % 100;
	rt = w % 100;
	pc = pc + 1;
	steps = steps + 1;
	if (op == 0) { return 0; }
	if (op == 1) { cpu_setreg(rd, alu(1, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 2) { cpu_setreg(rd, alu(2, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 3) { cpu_setreg(rd, alu(3, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 4) { cpu_setreg(rd, alu(4, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 5) { cpu_setreg(rd, alu(5, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 6) { cpu_setreg(rd, alu(6, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 7) { cpu_setreg(rd, alu(7, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 8) { cpu_setreg(rd, alu(8, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 9) { cpu_setreg(rd, alu(9, cpu_reg(rs), cpu_reg(rt))); return 1; }
	if (op == 10) { cpu_setreg(rd, alu(1, cpu_reg(rs), iv)); return 1; }
	if (op == 11) { cpu_setreg(rd, m_read(2048 + ((cpu_reg(rs) + iv) & 1023))); return 1; }
	if (op == 12) { m_write(2048 + ((cpu_reg(rs) + iv) & 1023), cpu_reg(rd)); return 1; }
	if (op == 13) { if (cpu_reg(rs) == cpu_reg(rt)) { pc = iv & 2047; } return 1; }
	if (op == 14) { if (cpu_reg(rs) != cpu_reg(rt)) { pc = iv & 2047; } return 1; }
	if (op == 15) { pc = iv & 2047; return 1; }
	return 1;
}

func cpu_run(maxsteps int) int {
	var k int;
	for (k = 0; k < maxsteps; k = k + 1) {
		if (!step()) { return k; }
	}
	return maxsteps;
}
`

const m88MainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func m_write(a int, v int) int;
extern func m_setimm(a int, v int) int;
extern func m_read(a int) int;
extern func cpu_reset(entry int) int;
extern func cpu_reg(i int) int;
extern func cpu_setreg(i int, v int) int;
extern func cpu_run(maxsteps int) int;
extern func cpu_steps() int;

static var asmpc int;

// Tiny assembler for the guest.
static func asm(op int, rd int, rs int, rt int, iv int) int {
	m_write(asmpc, op * 1000000 + rd * 10000 + rs * 100 + rt);
	m_setimm(asmpc, iv);
	asmpc = asmpc + 1;
	return asmpc - 1;
}

// loadguest assembles a guest program: an inner loop that hashes a
// rolling value and stores a small table, then loops back n times.
static func loadguest(n int) int {
	var loop int;
	asmpc = 0;
	asm(10, 1, 0, 0, n);       // r1 = n (counter)
	asm(10, 2, 0, 0, 12345);   // r2 = hash state
	asm(10, 5, 0, 0, 1);       // r5 = 1
	loop = asmpc;
	asm(3, 2, 2, 5, 0);        // r2 = r2 * 1 (keep mul unit busy)
	asm(10, 3, 2, 0, 7919);    // r3 = r2 + 7919
	asm(6, 2, 2, 3, 0);        // r2 ^= r3
	asm(8, 4, 2, 5, 0);        // r4 = r2 << 1
	asm(9, 6, 2, 5, 0);        // r6 = r2 >> 1
	asm(5, 2, 4, 6, 0);        // r2 = r4 | r6
	asm(10, 7, 0, 0, 1048575); // r7 = mask
	asm(4, 2, 2, 7, 0);        // r2 &= mask
	asm(12, 2, 1, 0, 0);       // mem[r1] = r2
	asm(11, 8, 1, 0, 0);       // r8 = mem[r1]
	asm(1, 9, 9, 8, 0);        // r9 += r8
	asm(2, 1, 1, 5, 0);        // r1 -= 1
	asm(14, 0, 1, 0, loop);    // bne r1, r0 -> loop
	asm(0, 0, 0, 0, 0);        // halt
	return asmpc;
}

// loadsort assembles a guest bubble sort over k values seeded in guest
// data memory — heavy on the guest's conditional branches, which drives
// the host's BHT model through the interpreter's dispatch.
static func loadsort(k int) int {
	var outer int;
	var inner int;
	asmpc = 0;
	// r1 = i (outer), r2 = j (inner), r3/r4 = elements, r5 = 1, r6 = k-1
	asm(10, 5, 0, 0, 1);       // r5 = 1
	asm(10, 6, 0, 0, k - 1);   // r6 = k-1
	asm(10, 1, 0, 0, 0);       // i = 0
	outer = asmpc;
	asm(10, 2, 0, 0, 0);       // j = 0
	inner = asmpc;
	asm(11, 3, 2, 0, 0);       // r3 = mem[j]
	asm(10, 7, 2, 0, 1);       // r7 = j + 1
	asm(11, 4, 7, 0, 0);       // r4 = mem[j+1]
	asm(7, 8, 4, 3, 0);        // r8 = r4 < r3
	asm(13, 0, 8, 0, asmpc + 3); // beq r8, r0 -> skip swap
	asm(12, 4, 2, 0, 0);       // mem[j] = r4
	asm(12, 3, 7, 0, 0);       // mem[j+1] = r3
	asm(1, 2, 2, 5, 0);        // j += 1
	asm(7, 8, 2, 6, 0);        // r8 = j < k-1
	asm(14, 0, 8, 0, inner);   // bne r8, r0 -> inner
	asm(1, 1, 1, 5, 0);        // i += 1
	asm(7, 8, 1, 6, 0);        // r8 = i < k-1
	asm(14, 0, 8, 0, outer);   // bne -> outer
	asm(0, 0, 0, 0, 0);        // halt
	return asmpc;
}

static var sortseed int;

static func srnd(m int) int {
	sortseed = (sortseed * 1103515245 + 12345) & 0x3fffffff;
	return (sortseed >> 6) % m;
}

static func seedsort(k int) int {
	var i int;
	for (i = 0; i < k; i = i + 1) {
		m_write(2048 + i, srnd(10000));
	}
	return k;
}

static func sortsum(k int) int {
	var i int;
	var s int;
	for (i = 0; i < k; i = i + 1) {
		s = (s * 3 + m_read(2048 + i) + i) & 0xffffff;
	}
	return s;
}

func main() int {
	var runs int;
	var r int;
	var sum int;
	var n int;
	runs = input(0);
	n = 40 + (input(1) & 15);
	sortseed = input(1) + 41;
	sum = 0;
	for (r = 0; r < runs; r = r + 1) {
		loadguest(n);
		cpu_reset(0);
		cpu_setreg(9, r);
		cpu_run(100000);
		sum = (sum + cpu_reg(9) + cpu_steps()) & 0xffffff;
		if ((r & 3) == 0) {
			var k int;
			k = 12 + (r & 7);
			seedsort(k);
			loadsort(k);
			cpu_reset(0);
			cpu_run(100000);
			sum = (sum + sortsum(k) + cpu_steps()) & 0xffffff;
		}
	}
	print(sum);
	print(m_read(2048 + 1));
	return 0;
}
`
