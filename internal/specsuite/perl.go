package specsuite

// 134.perl — the pattern-matching heart of a scripting language: a
// Kernighan-Pike regular-expression matcher (literal, '.', '*', '^',
// '$') running over synthesized text. match/matchhere/matchstar recurse
// through module boundaries, and matchstar receives constant pattern
// characters at its call sites.
func perlSources() []string {
	return []string{perlTextMod, perlRegexMod, perlMainMod}
}

const perlTextMod = `
module ptext;

// Text and pattern buffers. Characters are small ints; 0 terminates.
static var text [4096] int;
static var pats [256] int;

func text_set(i int, ch int) int { text[i & 4095] = ch; return ch; }
func text_at(i int) int { return text[i & 4095]; }
func pat_set(i int, ch int) int { pats[i & 255] = ch; return ch; }
func pat_at(i int) int { return pats[i & 255]; }
`

const perlRegexMod = `
module pregex;
extern func text_at(i int) int;
extern func pat_at(i int) int;

// Metacharacters: 1000 '.', 1001 '*', 1002 '^', 1003 '$'.

// matchhere: does pattern at p match text starting at t?
func matchhere(p int, t int) int {
	var pc int;
	pc = pat_at(p);
	if (pc == 0) { return 1; }
	if (pat_at(p + 1) == 1001) {
		return matchstar(pc, p + 2, t);
	}
	if (pc == 1003 && pat_at(p + 1) == 0) {
		return text_at(t) == 0;
	}
	if (text_at(t) != 0 && (pc == 1000 || pc == text_at(t))) {
		return matchhere(p + 1, t + 1);
	}
	return 0;
}

// matchstar: match c* followed by the rest of the pattern.
func matchstar(c int, p int, t int) int {
	var i int;
	i = t;
	while (1) {
		if (matchhere(p, i)) { return 1; }
		if (text_at(i) == 0) { return 0; }
		if (c != 1000 && text_at(i) != c) { return 0; }
		i = i + 1;
	}
	return 0;
}

// match: search the whole text for the pattern.
func match(t0 int) int {
	var t int;
	if (pat_at(0) == 1002) {
		return matchhere(1, t0);
	}
	t = t0;
	while (1) {
		if (matchhere(0, t)) { return 1; }
		if (text_at(t) == 0) { return 0; }
		t = t + 1;
	}
	return 0;
}

// countmatches: number of start positions where the pattern matches.
func countmatches() int {
	var t int;
	var n int;
	n = 0;
	t = 0;
	while (text_at(t) != 0) {
		if (matchhere(0, t)) { n = n + 1; }
		t = t + 1;
	}
	return n;
}
`

const perlMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func text_set(i int, ch int) int;
extern func pat_set(i int, ch int) int;
extern func match(t0 int) int;
extern func countmatches() int;

static var seed int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 8) % m;
}

// gentext writes a pseudo-English stream over a 6-letter alphabet with
// repeated digraphs so patterns actually match.
static func gentext(n int) int {
	var i int;
	var ch int;
	i = 0;
	while (i < n - 1) {
		ch = 97 + rnd(6);
		text_set(i, ch);
		i = i + 1;
		if (rnd(3) == 0 && i < n - 1) {
			text_set(i, 97);
			i = i + 1;
		}
	}
	text_set(i, 0);
	return i;
}

// setpat builds one of a fixed set of patterns.
static func setpat(k int) int {
	var i int;
	for (i = 0; i < 8; i = i + 1) { pat_set(i, 0); }
	if (k == 0) {
		pat_set(0, 97); pat_set(1, 98);                      // "ab"
	}
	if (k == 1) {
		pat_set(0, 97); pat_set(1, 1001); pat_set(2, 98);    // "a*b"
	}
	if (k == 2) {
		pat_set(0, 1000); pat_set(1, 97); pat_set(2, 1000);  // ".a."
	}
	if (k == 3) {
		pat_set(0, 1002); pat_set(1, 97);                    // "^a"
	}
	if (k == 4) {
		pat_set(0, 99); pat_set(1, 1001); pat_set(2, 97);    // "c*a"
	}
	if (k == 5) {
		pat_set(0, 98); pat_set(1, 97); pat_set(2, 1003);    // "ba$"
	}
	return k;
}

func main() int {
	var rounds int;
	var r int;
	var k int;
	var sum int;
	var n int;
	rounds = input(0);
	seed = input(1) + 23;
	sum = 0;
	for (r = 0; r < rounds; r = r + 1) {
		n = 200 + rnd(800);
		if (n > 4000) { n = 4000; }
		gentext(n);
		for (k = 0; k < 6; k = k + 1) {
			setpat(k);
			sum = sum + match(0) * (k + 1);
			sum = (sum + countmatches()) & 0xffffff;
		}
	}
	print(sum);
	print(rounds * 6);
	return 0;
}
`
