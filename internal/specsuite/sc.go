package specsuite

// 072.sc — a spreadsheet recalculation engine linked against a special
// "curses" display library whose routines do nothing. In the paper this
// benchmark showcased interprocedural side-effect analysis: the curses
// calls are deleted before inlining even starts because HLO proves them
// pure, and the remaining recalculation loop then benefits from
// cross-module inlining of the cell accessors.
func scSources() []string {
	return []string{scCursesMod, scCellsMod, scMainMod}
}

const scCursesMod = `
module curses;

// The paper: "The 072.sc benchmark includes a special curses library in
// which all curses calls do nothing." Every routine here is pure and
// loop-free so side-effect analysis can delete dead calls to it.
func cur_move(r int, c int) int { return r * 80 + c; }
func cur_addch(ch int) int { return ch; }
func cur_standout(on int) int { return on; }
func cur_refresh() int { return 1; }
func cur_clearline(r int) int { return r; }
`

const scCellsMod = `
module cells;

// The sheet: ROWS x COLS cells. Each cell has a kind and a payload:
// kind 0 = empty, 1 = constant(a), 2 = sum of rectangle (a=start,b=end),
// 3 = product of two cells, 4 = reference.
static var kind [1024] int;
static var pa [1024] int;
static var pb [1024] int;
static var val [1024] int;

func cell_id(r int, c int) int { return ((r & 31) << 5) | (c & 31); }
func cell_kind(id int) int { return kind[id & 1023]; }
func cell_a(id int) int { return pa[id & 1023]; }
func cell_b(id int) int { return pb[id & 1023]; }
func cell_val(id int) int { return val[id & 1023]; }
func cell_setval(id int, v int) int { val[id & 1023] = v; return v; }

func cell_def(id int, k int, a int, b int) int {
	kind[id & 1023] = k;
	pa[id & 1023] = a;
	pb[id & 1023] = b;
	val[id & 1023] = 0;
	return id;
}
`

const scMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func cur_move(r int, c int) int;
extern func cur_addch(ch int) int;
extern func cur_standout(on int) int;
extern func cur_refresh() int;
extern func cur_clearline(r int) int;
extern func cell_id(r int, c int) int;
extern func cell_kind(id int) int;
extern func cell_a(id int) int;
extern func cell_b(id int) int;
extern func cell_val(id int) int;
extern func cell_setval(id int, v int) int;
extern func cell_def(id int, k int, a int, b int) int;

static var seed int;
static var rowsN int;
static var colsN int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 8) % m;
}

// evalcell recomputes one cell from already-evaluated cells (sheet is
// evaluated in row-major order and formulas only reference earlier
// cells, so one pass converges).
static func evalcell(r int, c int) int {
	var id int;
	var k int;
	var v int;
	var rr int;
	var cc int;
	id = cell_id(r, c);
	k = cell_kind(id);
	v = 0;
	if (k == 1) {
		v = cell_a(id);
	}
	if (k == 2) {
		// Sum of the rectangle from (0,0) to (a%r, b%c) exclusive.
		var er int;
		var ec int;
		er = cell_a(id) % (r + 1);
		ec = cell_b(id) % (c + 1);
		for (rr = 0; rr <= er; rr = rr + 1) {
			for (cc = 0; cc <= ec; cc = cc + 1) {
				v = v + cell_val(cell_id(rr, cc));
			}
		}
	}
	if (k == 3) {
		v = cell_val(cell_a(id)) * cell_val(cell_b(id)) % 10007;
	}
	if (k == 4) {
		v = cell_val(cell_a(id));
	}
	cell_setval(id, v);
	// Display update: dead pure calls, deleted by HLO's side-effect
	// analysis exactly as in the paper's 072.sc.
	cur_move(r, c);
	cur_addch(v & 127);
	cur_standout(v & 1);
	return v;
}

static func recalc() int {
	var r int;
	var c int;
	var sum int;
	sum = 0;
	for (r = 0; r < rowsN; r = r + 1) {
		for (c = 0; c < colsN; c = c + 1) {
			sum = (sum + evalcell(r, c)) & 0xffffff;
		}
		cur_clearline(r);
	}
	cur_refresh();
	return sum;
}

static func build() int {
	var r int;
	var c int;
	var id int;
	var k int;
	for (r = 0; r < rowsN; r = r + 1) {
		for (c = 0; c < colsN; c = c + 1) {
			id = cell_id(r, c);
			if (r == 0 || c == 0) {
				cell_def(id, 1, rnd(100), 0);
			} else {
				k = 1 + rnd(4);
				if (k == 1) { cell_def(id, 1, rnd(1000), 0); }
				if (k == 2) { cell_def(id, 2, rnd(32), rnd(32)); }
				if (k == 3) {
					cell_def(id, 3, cell_id(r - 1, c), cell_id(r, c - 1));
				}
				if (k == 4) { cell_def(id, 4, cell_id(r - 1, c - 1), 0); }
			}
		}
	}
	return 0;
}

func main() int {
	var scale int;
	var pass int;
	var sum int;
	scale = input(0);
	seed = input(1) + 5;
	rowsN = 8 + scale;
	if (rowsN > 32) { rowsN = 32; }
	colsN = 8 + scale / 2;
	if (colsN > 32) { colsN = 32; }
	build();
	sum = 0;
	for (pass = 0; pass < 4; pass = pass + 1) {
		sum = (sum * 7 + recalc()) & 0xffffff;
	}
	print(sum);
	print(rowsN * 100 + colsN);
	return 0;
}
`
