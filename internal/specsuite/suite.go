// Package specsuite holds the synthetic stand-ins for the 14 SPECint92
// and SPECint95 programs of the paper's evaluation, written in MiniC.
// Each benchmark reproduces the *call-structure pathology* its namesake
// is known for — the property that made inlining or cloning profitable
// on the original — at a scale a unit-test-speed simulator can run:
//
//	008.espresso  bitset cube operations: tiny leaf routines called in
//	              deeply nested covering loops
//	022.li/130.li recursive Lisp evaluator: cross-module cell accessors
//	              and a tag-dispatch eval where cloning shines
//	023.eqntott   truth-table sort through a function-pointer
//	              comparator: the staged indirect→direct showcase
//	026/129.compress  LZW-style coder with hot byte-I/O accessors
//	072.sc        spreadsheet evaluator linked against a do-nothing
//	              curses library (interprocedural dead-call deletion)
//	085/126.gcc   expression compiler + stack VM: biggest program, many
//	              helper layers
//	099.go        board evaluator: neighbor/liberty helpers in flood
//	              fills
//	124.m88ksim   CPU simulator: ALU helper called with constant opcodes
//	              (clone groups par excellence)
//	132.ijpeg     integer 8×8 transform with per-site constant
//	              quantization factors
//	134.perl      regex matcher with recursive match/matchstar
//	147.vortex    object store with cross-module field accessors
//
// Train inputs are small (the paper's training data sets); ref inputs
// are larger. Outputs are checksums printed via the runtime, so every
// configuration (interpreter, simulator, any HLO setting) must agree.
package specsuite

import (
	"fmt"
	"sync"
)

// Benchmark is one synthetic SPEC program.
type Benchmark struct {
	Name    string   // e.g. "022.li"
	Suite   string   // "SPECint92" or "SPECint95"
	Sources []string // MiniC modules
	Train   []int64  // training input vector (profile gathering)
	Ref     []int64  // reference input vector (timed run)
	// RefVecs, when set, splits the reference workload into independent
	// input vectors that the experiment harness may time as separate
	// cells (summing their cycles). SPEC's m88ksim ran a deck of test
	// vectors; modelling that deck as one monolithic 900-iteration run
	// made its cell the parallel-schedule straggler. Ref stays valid for
	// callers that want one timed run.
	RefVecs [][]int64
}

// RefVectors returns the reference workload as a list of independent
// input vectors: RefVecs when the benchmark defines a split, else the
// single monolithic Ref vector.
func (b *Benchmark) RefVectors() [][]int64 {
	if len(b.RefVecs) > 0 {
		return b.RefVecs
	}
	return [][]int64{b.Ref}
}

// suite builds the benchmark set once: the source generators assemble
// sizeable MiniC programs, and the experiment harness asks for the
// suite from many goroutines. Callers treat the shared *Benchmark
// values as read-only.
var suite struct {
	once sync.Once
	all  []*Benchmark
}

// All returns the benchmarks in the paper's Figure 5 order. The
// returned slice is fresh but the *Benchmark values are shared:
// callers must not mutate them.
func All() []*Benchmark {
	suite.once.Do(func() { suite.all = build() })
	return append([]*Benchmark(nil), suite.all...)
}

func build() []*Benchmark {
	return []*Benchmark{
		{Name: "008.espresso", Suite: "SPECint92", Sources: espressoSources(), Train: []int64{6, 13}, Ref: []int64{14, 13}},
		{Name: "022.li", Suite: "SPECint92", Sources: liSources(), Train: []int64{40, 5}, Ref: []int64{260, 5}},
		{Name: "023.eqntott", Suite: "SPECint92", Sources: eqntottSources(), Train: []int64{48, 9}, Ref: []int64{240, 9}},
		{Name: "026.compress", Suite: "SPECint92", Sources: compressSources(), Train: []int64{600, 7}, Ref: []int64{4000, 7}},
		{Name: "072.sc", Suite: "SPECint92", Sources: scSources(), Train: []int64{8, 11}, Ref: []int64{36, 11}},
		{Name: "085.gcc", Suite: "SPECint92", Sources: gccSources(), Train: []int64{30, 3}, Ref: []int64{170, 3}},
		{Name: "099.go", Suite: "SPECint95", Sources: goSources(), Train: []int64{10, 17}, Ref: []int64{60, 17}},
		{Name: "124.m88ksim", Suite: "SPECint95", Sources: m88ksimSources(), Train: []int64{120, 19}, Ref: []int64{900, 19},
			// The 900-iteration ref deck split into six 150-iteration
			// vectors: the monolithic run was the experiment schedule's
			// 1.47 s straggler, capping parallel speedup at 5.4×.
			RefVecs: [][]int64{{150, 19}, {150, 19}, {150, 19}, {150, 19}, {150, 19}, {150, 19}}},
		{Name: "126.gcc", Suite: "SPECint95", Sources: gccSources(), Train: []int64{40, 23}, Ref: []int64{260, 23}},
		{Name: "129.compress", Suite: "SPECint95", Sources: compressSources(), Train: []int64{800, 29}, Ref: []int64{6000, 29}},
		{Name: "130.li", Suite: "SPECint95", Sources: liSources(), Train: []int64{50, 31}, Ref: []int64{340, 31}},
		{Name: "132.ijpeg", Suite: "SPECint95", Sources: ijpegSources(), Train: []int64{12, 37}, Ref: []int64{90, 37}},
		{Name: "134.perl", Suite: "SPECint95", Sources: perlSources(), Train: []int64{30, 41}, Ref: []int64{200, 41}},
		{Name: "147.vortex", Suite: "SPECint95", Sources: vortexSources(), Train: []int64{60, 43}, Ref: []int64{420, 43}},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("specsuite: unknown benchmark %q", name)
}

// Names lists all benchmark names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// Table1Names returns the benchmarks of the paper's Table 1.
func Table1Names() []string {
	return []string{
		"008.espresso", "022.li", "072.sc", "085.gcc",
		"099.go", "124.m88ksim", "147.vortex",
	}
}

// Figure7Names returns the SPEC95-like subset simulated in Figure 7.
func Figure7Names() []string {
	return []string{
		"099.go", "124.m88ksim", "130.li", "132.ijpeg", "134.perl", "147.vortex",
	}
}
