package specsuite_test

import (
	"math"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/pa8000"
	"repro/internal/specsuite"
	"repro/internal/testutil"
)

// TestBenchmarksRunEverywhere compiles every benchmark and checks that
// the interpreter and the simulator agree on train and ref inputs, both
// before and after HLO at whole-program scope with profile feedback —
// the strongest end-to-end consistency check in the repository.
func TestBenchmarksRunEverywhere(t *testing.T) {
	for _, b := range specsuite.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			ref := testutil.MustBuild(t, b.Sources...)
			want, err := interp.Run(ref, interp.Options{Inputs: b.Ref})
			if err != nil {
				t.Fatalf("interp ref: %v", err)
			}
			if len(want.Output) == 0 {
				t.Fatalf("benchmark produces no output")
			}
			if want.Steps < 10_000 {
				t.Errorf("ref run too small to be interesting: %d steps", want.Steps)
			}

			// Train run gathers the profile.
			trainP := testutil.MustBuild(t, b.Sources...)
			trainRes, err := interp.Run(trainP, interp.Options{Inputs: b.Train, Profile: true})
			if err != nil {
				t.Fatalf("train: %v", err)
			}

			for _, hlo := range []bool{false, true} {
				p := testutil.MustBuild(t, b.Sources...)
				if hlo {
					trainRes.Profile.Attach(p)
					core.Run(p, core.WholeProgram(), core.DefaultOptions())
					if err := p.Verify(); err != nil {
						t.Fatalf("verify after HLO: %v", err)
					}
					got, err := interp.Run(p, interp.Options{Inputs: b.Ref})
					if err != nil {
						t.Fatalf("interp after HLO: %v", err)
					}
					compare(t, "interp+hlo", got.Output, got.ExitCode, want.Output, want.ExitCode)
				}
				mp, err := backend.Link(p)
				if err != nil {
					t.Fatalf("hlo=%v link: %v", hlo, err)
				}
				st, err := pa8000.Run(mp, pa8000.Config{}, b.Ref)
				if err != nil {
					t.Fatalf("hlo=%v sim: %v", hlo, err)
				}
				compare(t, "sim", st.Output, st.ExitCode, want.Output, want.ExitCode)
			}
		})
	}
}

func compare(t *testing.T, what string, gotOut []int64, gotExit int64, wantOut []int64, wantExit int64) {
	t.Helper()
	if gotExit != wantExit {
		t.Errorf("%s: exit = %d, want %d", what, gotExit, wantExit)
	}
	if len(gotOut) != len(wantOut) {
		t.Fatalf("%s: output = %v, want %v", what, gotOut, wantOut)
	}
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("%s: output[%d] = %d, want %d", what, i, gotOut[i], wantOut[i])
		}
	}
}

// TestHLOSpeedsUpBenchmarks checks the headline claim qualitatively: at
// whole-program scope with profile feedback, HLO must not slow any
// benchmark down, and must speed up the suite overall (geometric mean
// of cycle ratios > 1).
func TestHLOSpeedsUpBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	product := 1.0
	n := 0
	for _, b := range specsuite.All() {
		base := testutil.MustBuild(t, b.Sources...)
		mpBase, err := backend.Link(base)
		if err != nil {
			t.Fatal(err)
		}
		stBase, err := pa8000.Run(mpBase, pa8000.Config{}, b.Ref)
		if err != nil {
			t.Fatal(err)
		}

		trainP := testutil.MustBuild(t, b.Sources...)
		trainRes, err := interp.Run(trainP, interp.Options{Inputs: b.Train, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		opt := testutil.MustBuild(t, b.Sources...)
		trainRes.Profile.Attach(opt)
		core.Run(opt, core.WholeProgram(), core.DefaultOptions())
		mpOpt, err := backend.Link(opt)
		if err != nil {
			t.Fatal(err)
		}
		stOpt, err := pa8000.Run(mpOpt, pa8000.Config{}, b.Ref)
		if err != nil {
			t.Fatal(err)
		}

		ratio := float64(stBase.Cycles) / float64(stOpt.Cycles)
		t.Logf("%-14s %12d -> %12d cycles  speedup %.3f", b.Name, stBase.Cycles, stOpt.Cycles, ratio)
		if ratio < 0.97 {
			t.Errorf("%s: HLO slowed the benchmark down by more than 3%%: %.3f", b.Name, ratio)
		}
		product *= ratio
		n++
	}
	if n > 0 {
		gm := math.Pow(product, 1.0/float64(n))
		t.Logf("geometric mean speedup: %.3f", gm)
		if gm <= 1.0 {
			t.Errorf("suite geometric mean speedup %.3f, want > 1", gm)
		}
	}
}
