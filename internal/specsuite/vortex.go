package specsuite

// 147.vortex — an in-memory object store: fixed-schema records in an
// arena, a hash index, and transaction loops that go through
// cross-module field accessors for every touch. Vortex was the paper's
// accessor-heavy database benchmark; most of its call sites were
// cross-module and tiny.
func vortexSources() []string {
	return []string{vortexSchemaMod, vortexStoreMod, vortexMainMod}
}

const vortexSchemaMod = `
module vschema;

// Records live in a flat arena, RECSIZE words each:
// 0 id, 1 kind, 2 balance, 3 links, 4 touched, 5..7 payload.
static var arena [8192] int;
static var nrecs int;

func rec_reset() int { nrecs = 0; return 0; }
func rec_count() int { return nrecs; }

func rec_new() int {
	var r int;
	if (nrecs >= 1020) { return 0 - 1; }
	r = nrecs;
	nrecs = nrecs + 1;
	return r;
}

func fld_get(r int, f int) int { return arena[(r * 8 + f) & 8191]; }
func fld_set(r int, f int, v int) int {
	arena[(r * 8 + f) & 8191] = v;
	return v;
}

// Typed accessors layered over fld_get/fld_set: two inline levels.
func rec_id(r int) int { return fld_get(r, 0); }
func rec_kind(r int) int { return fld_get(r, 1); }
func rec_balance(r int) int { return fld_get(r, 2); }
func rec_links(r int) int { return fld_get(r, 3); }
func rec_setid(r int, v int) int { return fld_set(r, 0, v); }
func rec_setkind(r int, v int) int { return fld_set(r, 1, v); }
func rec_setbalance(r int, v int) int { return fld_set(r, 2, v); }
func rec_setlinks(r int, v int) int { return fld_set(r, 3, v); }
func rec_touch(r int) int { return fld_set(r, 4, fld_get(r, 4) + 1); }
`

const vortexStoreMod = `
module vstore;
extern func rec_new() int;
extern func rec_id(r int) int;
extern func rec_setid(r int, v int) int;
extern func rec_setkind(r int, v int) int;
extern func rec_setbalance(r int, v int) int;
extern func rec_setlinks(r int, v int) int;

// Open-addressed id index.
static var slots [2048] int;

func idx_reset() int {
	var i int;
	for (i = 0; i < 2048; i = i + 1) { slots[i] = 0 - 1; }
	return 0;
}

static func hash(id int) int { return (id * 2654435761) & 2047; }

func idx_insert(id int, rec int) int {
	var h int;
	h = hash(id);
	while (slots[h] >= 0) { h = (h + 1) & 2047; }
	slots[h] = rec;
	return h;
}

func idx_find(id int) int {
	var h int;
	var k int;
	h = hash(id);
	for (k = 0; k < 2048; k = k + 1) {
		if (slots[h] < 0) { return 0 - 1; }
		if (rec_id(slots[h]) == id) { return slots[h]; }
		h = (h + 1) & 2047;
	}
	return 0 - 1;
}

// db_create allocates and indexes one record.
func db_create(id int, kind int, balance int) int {
	var r int;
	r = rec_new();
	if (r < 0) { return r; }
	rec_setid(r, id);
	rec_setkind(r, kind);
	rec_setbalance(r, balance);
	rec_setlinks(r, 0);
	idx_insert(id, r);
	return r;
}
`

const vortexMainMod = `
module main;
extern func print(x int) int;
extern func input(i int) int;
extern func rec_reset() int;
extern func rec_count() int;
extern func rec_kind(r int) int;
extern func rec_balance(r int) int;
extern func rec_setbalance(r int, v int) int;
extern func rec_links(r int) int;
extern func rec_setlinks(r int, v int) int;
extern func rec_touch(r int) int;
extern func idx_reset() int;
extern func idx_find(id int) int;
extern func db_create(id int, kind int, balance int) int;

static var seed int;

static func rnd(m int) int {
	seed = (seed * 1103515245 + 12345) & 0x3fffffff;
	return (seed >> 9) % m;
}

// xfer moves funds between two records, touching both.
static func xfer(a int, b int, amt int) int {
	if (a < 0 || b < 0) { return 0; }
	rec_setbalance(a, rec_balance(a) - amt);
	rec_setbalance(b, rec_balance(b) + amt);
	rec_touch(a);
	rec_touch(b);
	return amt;
}

// linkup connects records of the same kind into counted link chains.
static func linkup(n int) int {
	var i int;
	var r int;
	var links int;
	links = 0;
	for (i = 0; i < n; i = i + 1) {
		r = idx_find(i * 7 + 1);
		if (r >= 0) {
			rec_setlinks(r, rec_links(r) + (rec_kind(r) == (i & 3) ? 2 : 1));
			links = links + rec_links(r);
		}
	}
	return links;
}

func main() int {
	var txns int;
	var n int;
	var t int;
	var sum int;
	var a int;
	var b int;
	txns = input(0);
	seed = input(1) + 2;
	n = 200;
	rec_reset();
	idx_reset();
	for (t = 0; t < n; t = t + 1) {
		db_create(t * 7 + 1, t & 3, 1000 + rnd(500));
	}
	sum = 0;
	for (t = 0; t < txns * 20; t = t + 1) {
		a = idx_find((rnd(n)) * 7 + 1);
		b = idx_find((rnd(n)) * 7 + 1);
		sum = (sum + xfer(a, b, rnd(100))) & 0xffffff;
		if ((t & 15) == 0) { sum = (sum + linkup(n)) & 0xffffff; }
	}
	for (t = 0; t < n; t = t + 1) {
		a = idx_find(t * 7 + 1);
		if (a >= 0) { sum = (sum + rec_balance(a)) & 0xffffff; }
	}
	print(sum);
	print(rec_count());
	return 0;
}
`
