package testutil

import (
	"encoding/json"
	"flag"
	"os"
	"sync"
	"testing"
)

// benchJSON is where RecordBenchJSON accumulates benchmark metrics.
// `go test -bench . -benchjson=other.json` redirects it; an empty value
// disables recording. The file is only touched by benchmarks that call
// RecordBenchJSON, so plain `go test` runs never write it.
var benchJSON = flag.String("benchjson", "BENCH_experiments.json",
	"file accumulating benchmark metrics as JSON (empty disables)")

// On a time-sharing host scheduler noise only ever *adds* wall time, so
// when hunting a representative number the minimum-wall run of a batch
// is the best estimator of the true cost. -benchjson-best keeps, per
// key, whichever of the stored and new samples has the lower wall_s
// (higher throughput), turning `go test -bench -count=N` into an
// explicit best-of-N. It is off by default so plain regenerations still
// overwrite — a regression must never be hidden by a stale fast sample.
var benchJSONBest = flag.Bool("benchjson-best", false,
	"keep the best (lowest wall_s) sample per key instead of the last")

var benchJSONMu sync.Mutex

// RecordBenchJSON merges the named benchmark's metrics into the
// -benchjson file (read-modify-write, so several benchmarks and several
// `go test -bench` invocations accumulate into one document). Keys are
// benchmark names, values are metric name → value.
func RecordBenchJSON(tb testing.TB, name string, metrics map[string]float64) {
	tb.Helper()
	if *benchJSON == "" || len(metrics) == 0 {
		return
	}
	benchJSONMu.Lock()
	defer benchJSONMu.Unlock()
	all := map[string]map[string]float64{}
	if data, err := os.ReadFile(*benchJSON); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			all = map[string]map[string]float64{} // overwrite corrupt files
		}
	}
	m := all[name]
	if m == nil {
		m = map[string]float64{}
		all[name] = m
	}
	if *benchJSONBest {
		if old, ok := m["wall_s"]; ok {
			if nw, ok2 := metrics["wall_s"]; ok2 && old <= nw {
				return // stored sample is already the faster run
			}
		}
	}
	for k, v := range metrics {
		m[k] = v
	}
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		tb.Errorf("benchjson: marshal: %v", err)
		return
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
		tb.Errorf("benchjson: write %s: %v", *benchJSON, err)
	}
}
