// Package testutil holds helpers shared by the test suites: building IR
// programs from MiniC source strings and running them on the reference
// interpreter.
package testutil

import (
	"fmt"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
)

// Build compiles MiniC source strings (one module each) into a resolved,
// verified program.
func Build(sources ...string) (*ir.Program, error) {
	files := make([]*minic.File, 0, len(sources))
	for i, src := range sources {
		f, err := minic.Parse(fmt.Sprintf("src%d.mc", i), src)
		if err != nil {
			return nil, err
		}
		if err := minic.Check(f); err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return lower.Program(files)
}

// MustBuild is Build that fails the test on error.
func MustBuild(t testing.TB, sources ...string) *ir.Program {
	t.Helper()
	p, err := Build(sources...)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// MustRun executes the program on the interpreter and fails the test on
// any runtime error.
func MustRun(t testing.TB, p *ir.Program, inputs ...int64) *interp.Result {
	t.Helper()
	res, err := interp.Run(p, interp.Options{Inputs: inputs})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// EqualOutput fails the test unless got's output and exit code match.
func EqualOutput(t testing.TB, got *interp.Result, wantExit int64, wantOut ...int64) {
	t.Helper()
	if got.ExitCode != wantExit {
		t.Errorf("exit code = %d, want %d", got.ExitCode, wantExit)
	}
	if len(got.Output) != len(wantOut) {
		t.Fatalf("output = %v, want %v", got.Output, wantOut)
	}
	for i := range wantOut {
		if got.Output[i] != wantOut[i] {
			t.Errorf("output[%d] = %d, want %d (full: %v)", i, got.Output[i], wantOut[i], got.Output)
		}
	}
}
